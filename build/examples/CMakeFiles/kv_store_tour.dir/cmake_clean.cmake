file(REMOVE_RECURSE
  "CMakeFiles/kv_store_tour.dir/kv_store_tour.cpp.o"
  "CMakeFiles/kv_store_tour.dir/kv_store_tour.cpp.o.d"
  "kv_store_tour"
  "kv_store_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_store_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
