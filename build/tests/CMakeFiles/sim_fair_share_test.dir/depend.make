# Empty dependencies file for sim_fair_share_test.
# This may be replaced when dependencies are built.
