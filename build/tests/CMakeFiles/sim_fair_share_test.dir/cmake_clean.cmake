file(REMOVE_RECURSE
  "CMakeFiles/sim_fair_share_test.dir/sim_fair_share_test.cc.o"
  "CMakeFiles/sim_fair_share_test.dir/sim_fair_share_test.cc.o.d"
  "sim_fair_share_test"
  "sim_fair_share_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fair_share_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
