file(REMOVE_RECURSE
  "CMakeFiles/web_failure_test.dir/web_failure_test.cc.o"
  "CMakeFiles/web_failure_test.dir/web_failure_test.cc.o.d"
  "web_failure_test"
  "web_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
