# Empty dependencies file for web_failure_test.
# This may be replaced when dependencies are built.
