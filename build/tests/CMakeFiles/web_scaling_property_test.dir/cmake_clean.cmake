file(REMOVE_RECURSE
  "CMakeFiles/web_scaling_property_test.dir/web_scaling_property_test.cc.o"
  "CMakeFiles/web_scaling_property_test.dir/web_scaling_property_test.cc.o.d"
  "web_scaling_property_test"
  "web_scaling_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_scaling_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
