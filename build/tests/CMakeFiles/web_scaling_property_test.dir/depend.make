# Empty dependencies file for web_scaling_property_test.
# This may be replaced when dependencies are built.
