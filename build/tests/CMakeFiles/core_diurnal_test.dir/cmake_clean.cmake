file(REMOVE_RECURSE
  "CMakeFiles/core_diurnal_test.dir/core_diurnal_test.cc.o"
  "CMakeFiles/core_diurnal_test.dir/core_diurnal_test.cc.o.d"
  "core_diurnal_test"
  "core_diurnal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_diurnal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
