# Empty compiler generated dependencies file for core_diurnal_test.
# This may be replaced when dependencies are built.
