file(REMOVE_RECURSE
  "CMakeFiles/property_hdfs_tcp_test.dir/property_hdfs_tcp_test.cc.o"
  "CMakeFiles/property_hdfs_tcp_test.dir/property_hdfs_tcp_test.cc.o.d"
  "property_hdfs_tcp_test"
  "property_hdfs_tcp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_hdfs_tcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
