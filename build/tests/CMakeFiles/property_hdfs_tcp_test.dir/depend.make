# Empty dependencies file for property_hdfs_tcp_test.
# This may be replaced when dependencies are built.
