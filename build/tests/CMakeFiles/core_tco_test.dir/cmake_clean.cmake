file(REMOVE_RECURSE
  "CMakeFiles/core_tco_test.dir/core_tco_test.cc.o"
  "CMakeFiles/core_tco_test.dir/core_tco_test.cc.o.d"
  "core_tco_test"
  "core_tco_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tco_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
