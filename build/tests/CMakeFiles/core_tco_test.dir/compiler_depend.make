# Empty compiler generated dependencies file for core_tco_test.
# This may be replaced when dependencies are built.
