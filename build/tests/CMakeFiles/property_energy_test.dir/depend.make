# Empty dependencies file for property_energy_test.
# This may be replaced when dependencies are built.
