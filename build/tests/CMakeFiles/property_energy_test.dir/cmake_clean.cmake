file(REMOVE_RECURSE
  "CMakeFiles/property_energy_test.dir/property_energy_test.cc.o"
  "CMakeFiles/property_energy_test.dir/property_energy_test.cc.o.d"
  "property_energy_test"
  "property_energy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_energy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
