file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_compute_test.dir/mapreduce_compute_test.cc.o"
  "CMakeFiles/mapreduce_compute_test.dir/mapreduce_compute_test.cc.o.d"
  "mapreduce_compute_test"
  "mapreduce_compute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_compute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
