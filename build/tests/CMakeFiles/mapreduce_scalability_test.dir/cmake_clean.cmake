file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_scalability_test.dir/mapreduce_scalability_test.cc.o"
  "CMakeFiles/mapreduce_scalability_test.dir/mapreduce_scalability_test.cc.o.d"
  "mapreduce_scalability_test"
  "mapreduce_scalability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_scalability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
