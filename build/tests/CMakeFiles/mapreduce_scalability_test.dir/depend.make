# Empty dependencies file for mapreduce_scalability_test.
# This may be replaced when dependencies are built.
