# Empty compiler generated dependencies file for core_proportionality_test.
# This may be replaced when dependencies are built.
