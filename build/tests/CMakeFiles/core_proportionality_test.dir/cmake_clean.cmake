file(REMOVE_RECURSE
  "CMakeFiles/core_proportionality_test.dir/core_proportionality_test.cc.o"
  "CMakeFiles/core_proportionality_test.dir/core_proportionality_test.cc.o.d"
  "core_proportionality_test"
  "core_proportionality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_proportionality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
