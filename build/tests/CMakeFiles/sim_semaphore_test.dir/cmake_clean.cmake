file(REMOVE_RECURSE
  "CMakeFiles/sim_semaphore_test.dir/sim_semaphore_test.cc.o"
  "CMakeFiles/sim_semaphore_test.dir/sim_semaphore_test.cc.o.d"
  "sim_semaphore_test"
  "sim_semaphore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_semaphore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
