file(REMOVE_RECURSE
  "CMakeFiles/net_edge_test.dir/net_edge_test.cc.o"
  "CMakeFiles/net_edge_test.dir/net_edge_test.cc.o.d"
  "net_edge_test"
  "net_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
