# Empty compiler generated dependencies file for hw_power_test.
# This may be replaced when dependencies are built.
