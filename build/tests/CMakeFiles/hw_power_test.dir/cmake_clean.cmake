file(REMOVE_RECURSE
  "CMakeFiles/hw_power_test.dir/hw_power_test.cc.o"
  "CMakeFiles/hw_power_test.dir/hw_power_test.cc.o.d"
  "hw_power_test"
  "hw_power_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
