file(REMOVE_RECURSE
  "CMakeFiles/core_capacity_test.dir/core_capacity_test.cc.o"
  "CMakeFiles/core_capacity_test.dir/core_capacity_test.cc.o.d"
  "core_capacity_test"
  "core_capacity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_capacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
