file(REMOVE_RECURSE
  "CMakeFiles/web_catalog_test.dir/web_catalog_test.cc.o"
  "CMakeFiles/web_catalog_test.dir/web_catalog_test.cc.o.d"
  "web_catalog_test"
  "web_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
