# Empty compiler generated dependencies file for web_catalog_test.
# This may be replaced when dependencies are built.
