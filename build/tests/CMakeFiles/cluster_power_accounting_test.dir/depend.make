# Empty dependencies file for cluster_power_accounting_test.
# This may be replaced when dependencies are built.
