file(REMOVE_RECURSE
  "CMakeFiles/cluster_power_accounting_test.dir/cluster_power_accounting_test.cc.o"
  "CMakeFiles/cluster_power_accounting_test.dir/cluster_power_accounting_test.cc.o.d"
  "cluster_power_accounting_test"
  "cluster_power_accounting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_power_accounting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
