# Empty compiler generated dependencies file for hw_profile_test.
# This may be replaced when dependencies are built.
