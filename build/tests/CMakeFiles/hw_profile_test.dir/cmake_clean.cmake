file(REMOVE_RECURSE
  "CMakeFiles/hw_profile_test.dir/hw_profile_test.cc.o"
  "CMakeFiles/hw_profile_test.dir/hw_profile_test.cc.o.d"
  "hw_profile_test"
  "hw_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
