file(REMOVE_RECURSE
  "CMakeFiles/sim_process_test.dir/sim_process_test.cc.o"
  "CMakeFiles/sim_process_test.dir/sim_process_test.cc.o.d"
  "sim_process_test"
  "sim_process_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
