# Empty compiler generated dependencies file for web_shapes_test.
# This may be replaced when dependencies are built.
