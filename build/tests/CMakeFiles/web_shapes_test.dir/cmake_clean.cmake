file(REMOVE_RECURSE
  "CMakeFiles/web_shapes_test.dir/web_shapes_test.cc.o"
  "CMakeFiles/web_shapes_test.dir/web_shapes_test.cc.o.d"
  "web_shapes_test"
  "web_shapes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
