file(REMOVE_RECURSE
  "CMakeFiles/hw_dvfs_test.dir/hw_dvfs_test.cc.o"
  "CMakeFiles/hw_dvfs_test.dir/hw_dvfs_test.cc.o.d"
  "hw_dvfs_test"
  "hw_dvfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_dvfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
