# Empty dependencies file for web_server_unit_test.
# This may be replaced when dependencies are built.
