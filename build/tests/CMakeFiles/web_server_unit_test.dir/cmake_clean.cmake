file(REMOVE_RECURSE
  "CMakeFiles/web_server_unit_test.dir/web_server_unit_test.cc.o"
  "CMakeFiles/web_server_unit_test.dir/web_server_unit_test.cc.o.d"
  "web_server_unit_test"
  "web_server_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_server_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
