# Empty dependencies file for property_fair_share_test.
# This may be replaced when dependencies are built.
