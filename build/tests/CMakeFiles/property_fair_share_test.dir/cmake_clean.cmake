file(REMOVE_RECURSE
  "CMakeFiles/property_fair_share_test.dir/property_fair_share_test.cc.o"
  "CMakeFiles/property_fair_share_test.dir/property_fair_share_test.cc.o.d"
  "property_fair_share_test"
  "property_fair_share_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_fair_share_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
