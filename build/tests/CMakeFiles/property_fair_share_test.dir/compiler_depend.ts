# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for property_fair_share_test.
