# Empty dependencies file for mapreduce_hdfs_yarn_test.
# This may be replaced when dependencies are built.
