file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_hdfs_yarn_test.dir/mapreduce_hdfs_yarn_test.cc.o"
  "CMakeFiles/mapreduce_hdfs_yarn_test.dir/mapreduce_hdfs_yarn_test.cc.o.d"
  "mapreduce_hdfs_yarn_test"
  "mapreduce_hdfs_yarn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_hdfs_yarn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
