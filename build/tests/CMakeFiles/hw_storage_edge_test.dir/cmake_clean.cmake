file(REMOVE_RECURSE
  "CMakeFiles/hw_storage_edge_test.dir/hw_storage_edge_test.cc.o"
  "CMakeFiles/hw_storage_edge_test.dir/hw_storage_edge_test.cc.o.d"
  "hw_storage_edge_test"
  "hw_storage_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_storage_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
