# Empty compiler generated dependencies file for hw_storage_edge_test.
# This may be replaced when dependencies are built.
