file(REMOVE_RECURSE
  "CMakeFiles/web_warmup_test.dir/web_warmup_test.cc.o"
  "CMakeFiles/web_warmup_test.dir/web_warmup_test.cc.o.d"
  "web_warmup_test"
  "web_warmup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_warmup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
