file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_tera_pipeline_test.dir/mapreduce_tera_pipeline_test.cc.o"
  "CMakeFiles/mapreduce_tera_pipeline_test.dir/mapreduce_tera_pipeline_test.cc.o.d"
  "mapreduce_tera_pipeline_test"
  "mapreduce_tera_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_tera_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
