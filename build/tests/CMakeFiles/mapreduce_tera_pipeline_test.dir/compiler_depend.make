# Empty compiler generated dependencies file for mapreduce_tera_pipeline_test.
# This may be replaced when dependencies are built.
