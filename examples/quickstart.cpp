// Quickstart: evaluate work-done-per-joule of a micro-server cluster
// against a conventional cluster on one web-service level and one
// MapReduce job, in ~30 lines of API use.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/experiments.h"
#include "web/service.h"

int main() {
  using namespace wimpy;

  // --- Web service: 6 Edison web servers vs 1 Dell, same offered load. ---
  web::WebExperiment edison_web(web::EdisonWebTestbed(/*web_servers=*/6,
                                                      /*cache_servers=*/3));
  web::WebExperiment dell_web(web::DellWebTestbed(/*web_servers=*/1,
                                                  /*cache_servers=*/1));
  const web::WorkloadMix mix = web::LightMix();
  const double concurrency = 128;
  const int calls = web::WebExperiment::TunedCallsPerConnection(concurrency);

  const web::LevelReport e = edison_web.MeasureClosedLoop(mix, concurrency,
                                                          calls);
  const web::LevelReport d = dell_web.MeasureClosedLoop(mix, concurrency,
                                                        calls);
  std::printf("Web service at %0.f conn/s x %d calls:\n", concurrency,
              calls);
  std::printf("  Edison (6 web): %6.0f req/s at %5.1f W -> %6.1f req/J\n",
              e.achieved_rps, e.middle_tier_power,
              e.achieved_rps / e.middle_tier_power);
  std::printf("  Dell   (1 web): %6.0f req/s at %5.1f W -> %6.1f req/J\n",
              d.achieved_rps, d.middle_tier_power,
              d.achieved_rps / d.middle_tier_power);

  // --- MapReduce: wordcount2 on 8 Edison slaves vs 1 Dell slave. ----------
  const auto e_mr = core::RunPaperJob(core::PaperJob::kWordCount2,
                                      mapreduce::EdisonMrCluster(8));
  const auto d_mr = core::RunPaperJob(core::PaperJob::kWordCount2,
                                      mapreduce::DellMrCluster(1));
  std::printf("\nMapReduce wordcount2 (1 GB input):\n");
  std::printf("  Edison (8 slaves): %5.0f s, %6.0f J, %0.3f MB/J\n",
              e_mr.job.elapsed, e_mr.slave_joules,
              e_mr.work_done_per_joule);
  std::printf("  Dell   (1 slave) : %5.0f s, %6.0f J, %0.3f MB/J\n",
              d_mr.job.elapsed, d_mr.slave_joules,
              d_mr.work_done_per_joule);
  std::printf(
      "\nThe Edison cluster is slower but does more work per joule — the\n"
      "paper's core result, reproduced end to end in simulation.\n");
  return 0;
}
