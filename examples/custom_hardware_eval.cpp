// Evaluate a *new* hardware platform end to end: take the built-in
// Raspberry Pi 2 profile, build web and MapReduce clusters from it, and
// compare throughput-per-watt against Edison — the exact study a
// downstream user of this library would run for their own boards.
//
// Build & run:  ./build/examples/custom_hardware_eval
#include <cstdio>

#include "common/table.h"
#include "core/experiments.h"
#include "hw/profiles.h"
#include "web/service.h"

int main() {
  using namespace wimpy;

  // --- Web tier: 6 web + 3 cache of each platform, same offered load. ----
  TextTable web_table("Web service: 6 web + 3 cache servers, 128 conn/s");
  web_table.SetHeader({"Platform", "req/s", "Power", "req/J",
                       "Mean delay"});
  for (const std::string name : {"edison", "raspberry-pi-2"}) {
    const auto profile = hw::ProfileRegistry::Get(name);
    if (!profile.ok()) continue;
    web::WebTestbedConfig config = web::EdisonWebTestbed(6, 3);
    config.middle_profile = *profile;
    web::WebExperiment exp(config);
    const auto r = exp.MeasureClosedLoop(
        web::LightMix(), 128,
        web::WebExperiment::TunedCallsPerConnection(128));
    web_table.AddRow({name, TextTable::Num(r.achieved_rps, 0),
                      TextTable::Num(r.middle_tier_power, 1) + " W",
                      TextTable::Num(r.achieved_rps / r.middle_tier_power,
                                     1),
                      TextTable::Num(1000 * r.mean_response, 1) + " ms"});
  }
  web_table.Print();

  // --- MapReduce: wordcount2 on 8 slaves of each platform. ---------------
  TextTable mr_table("MapReduce wordcount2 (1 GB) on 8 slaves");
  mr_table.SetHeader({"Platform", "Runtime", "Energy", "MB/J"});
  for (const std::string name : {"edison", "raspberry-pi-2"}) {
    const auto profile = hw::ProfileRegistry::Get(name);
    if (!profile.ok()) continue;
    mapreduce::MrClusterConfig config = mapreduce::EdisonMrCluster(8);
    config.slave_profile = *profile;
    const auto r =
        core::RunPaperJob(core::PaperJob::kWordCount2, config);
    mr_table.AddRow({name, TextTable::Num(r.job.elapsed, 0) + " s",
                     TextTable::Num(r.slave_joules, 0) + " J",
                     TextTable::Num(r.work_done_per_joule, 3)});
  }
  mr_table.Print();

  std::printf(
      "\nTo evaluate your own board: fill in a hw::HardwareProfile from\n"
      "datasheet + microbenchmark numbers, ProfileRegistry::Register it,\n"
      "and reuse any experiment in this library unchanged.\n");
  return 0;
}
