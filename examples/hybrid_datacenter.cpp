// The paper's §7 vision, executable: plan a hybrid datacenter that serves
// a latency-SLO-bound web share on brawny nodes and everything else on
// micro servers, then compare TCO and power against the pure fleets.
//
// Usage: ./build/examples/hybrid_datacenter [web_rps] [slo_ms] [mr_gb_day]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "core/hybrid.h"
#include "hw/profiles.h"

int main(int argc, char** argv) {
  using namespace wimpy;

  core::WorkloadTarget target;
  target.web_rps = argc > 1 ? std::atof(argv[1]) : 12000;
  target.web_latency_slo =
      Milliseconds(argc > 2 ? std::atof(argv[2]) : 40);
  target.mr_mb_per_day = (argc > 3 ? std::atof(argv[3]) : 800) * 1000.0;

  std::printf(
      "Calibrating node capabilities with probe simulations...\n");
  const core::NodeCapability wimpy_cap =
      core::CalibrateNode(hw::EdisonProfile());
  const core::NodeCapability brawny_cap =
      core::CalibrateNode(hw::DellR620Profile());
  std::printf(
      "  edison: %.0f rps/node (%.1f ms), %.2f MR MB/s/node\n"
      "  dell  : %.0f rps/node (%.1f ms), %.2f MR MB/s/node\n\n",
      wimpy_cap.web_rps_per_node, 1000 * wimpy_cap.web_latency,
      wimpy_cap.mr_mbps_per_node, brawny_cap.web_rps_per_node,
      1000 * brawny_cap.web_latency, brawny_cap.mr_mbps_per_node);

  const auto plans = core::PlanFleet(target, wimpy_cap, brawny_cap);

  char title[160];
  std::snprintf(title, sizeof(title),
                "Fleet plans for %.0f rps (SLO %.0f ms on 30%% of "
                "traffic) + %.0f GB/day MapReduce",
                target.web_rps, 1000 * target.web_latency_slo,
                target.mr_mb_per_day / 1000);
  TextTable table(title);
  table.SetHeader({"Plan", "SLO tier", "Web tier", "Batch tier",
                   "Mean power", "3-yr TCO", "Note"});
  for (const auto& plan : plans) {
    if (!plan.feasible) {
      table.AddRow({plan.name, "-", "-", "-", "-", "-", plan.note});
      continue;
    }
    auto tier = [](int n, const std::string& profile) {
      return std::to_string(n) + " x " + profile;
    };
    table.AddRow({plan.name, tier(plan.latency_nodes, plan.latency_profile),
                  tier(plan.web_nodes, plan.web_profile),
                  tier(plan.batch_nodes, plan.batch_profile),
                  TextTable::Num(plan.mean_power, 0) + " W",
                  "$" + TextTable::Num(plan.tco_3yr_usd, 0), ""});
  }
  table.Print();

  std::printf(
      "\nThe hybrid keeps the brawny tier only where the SLO demands it —\n"
      "\"achieving both high performance and low power consumption\" (§7).\n");
  return 0;
}
