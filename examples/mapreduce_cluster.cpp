// Run any of the paper's MapReduce jobs on a cluster you choose, and get
// the per-second telemetry timeline the paper plots in Figures 12-17.
//
// Usage:  ./build/examples/mapreduce_cluster [job] [platform] [slaves]
//   job:      wordcount|wordcount2|logcount|logcount2|pi|terasort
//   platform: edison|dell
//   slaves:   number of slave nodes (default 8 edison / 2 dell)
#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiments.h"

namespace {

using namespace wimpy;

core::PaperJob ParseJob(const std::string& name) {
  for (core::PaperJob job : core::AllPaperJobs()) {
    if (core::PaperJobName(job) == name) return job;
  }
  std::fprintf(stderr, "unknown job '%s', using wordcount2\n",
               name.c_str());
  return core::PaperJob::kWordCount2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string job_name = argc > 1 ? argv[1] : "wordcount2";
  const std::string platform = argc > 2 ? argv[2] : "edison";
  const bool edison = platform != "dell";
  const int slaves =
      argc > 3 ? std::atoi(argv[3]) : (edison ? 8 : 2);

  const core::PaperJob job = ParseJob(job_name);
  const auto config = edison ? mapreduce::EdisonMrCluster(slaves)
                             : mapreduce::DellMrCluster(slaves);
  std::printf("Running %s on %d %s slave(s)...\n", job_name.c_str(), slaves,
              edison ? "Edison" : "Dell R620");
  const mapreduce::MrRunResult result = core::RunPaperJob(job, config);

  std::printf(
      "\nfinished in %.0f s; slave energy %.0f J (mean %.1f W); %d map / "
      "%d reduce tasks; %.0f%% data-local; %.3f MB input per joule\n\n",
      result.job.elapsed, result.slave_joules, result.mean_slave_power,
      result.job.map_tasks, result.job.reduce_tasks,
      100 * result.job.data_local_fraction, result.work_done_per_joule);

  std::printf("%8s %8s %8s %10s %8s %8s\n", "t(s)", "CPU%", "Mem%",
              "Power(W)", "Map%", "Reduce%");
  const std::size_t stride =
      std::max<std::size_t>(1, result.timeline.size() / 30);
  for (std::size_t i = 0; i < result.timeline.size(); i += stride) {
    const auto& s = result.timeline[i];
    std::printf("%8.0f %8.1f %8.1f %10.1f %8.1f %8.1f\n", s.time,
                s.cpu_pct, s.memory_pct, s.power_watts, s.gauge_a,
                s.gauge_b);
  }
  return 0;
}
