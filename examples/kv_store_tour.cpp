// Tour of the FAWN-style key-value workload API: build a store tier on
// any profile, sweep the offered load to its knee, and read out latency
// and queries-per-joule — the related-work experiment that motivated
// sensor-class serving in the first place.
//
// Usage: ./build/examples/kv_store_tour [profile] [nodes]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "hw/profiles.h"
#include "kv/experiment.h"

int main(int argc, char** argv) {
  using namespace wimpy;

  const std::string profile_name = argc > 1 ? argv[1] : "edison";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 8;

  const auto profile = hw::ProfileRegistry::Get(profile_name);
  if (!profile.ok()) {
    std::fprintf(stderr, "unknown profile '%s' (%s)\n",
                 profile_name.c_str(),
                 profile.status().ToString().c_str());
    return 1;
  }

  kv::KvExperimentConfig config;
  config.node_profile = *profile;
  config.node_count = nodes;
  kv::KvExperiment experiment(config);

  TextTable table("KV load sweep: " + std::to_string(nodes) + " x " +
                  profile_name + " (90% GET, 1 KB values)");
  table.SetHeader({"Offered qps", "Achieved", "Mean lat", "p99 lat",
                   "Power", "Queries/J"});
  for (double qps = 250; qps <= 16000; qps *= 2) {
    const kv::KvReport r = experiment.Measure(qps, Seconds(10));
    table.AddRow({TextTable::Num(qps, 0),
                  TextTable::Num(r.achieved_qps, 0),
                  FormatDuration(r.mean_latency),
                  FormatDuration(r.p99_latency),
                  TextTable::Num(r.store_power, 1) + " W",
                  TextTable::Num(r.queries_per_joule, 0)});
    if (r.achieved_qps < 0.8 * qps) break;  // past the knee
  }
  table.Print();

  const kv::KvReport peak = experiment.FindPeak(250, 64000);
  std::printf("\nStable peak: %.0f qps at %.0f queries/joule.\n",
              peak.achieved_qps, peak.queries_per_joule);
  return 0;
}
