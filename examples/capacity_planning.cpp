// Capacity planning & TCO for *your own* hardware: register a custom
// profile, compute how many such nodes replace a Dell R620, and compare
// 3-year TCO — the paper's §3.1/§6 methodology generalised.
//
// Build & run:  ./build/examples/capacity_planning
#include <cstdio>

#include "common/table.h"
#include "core/capacity.h"
#include "core/tco.h"
#include "hw/profiles.h"

int main() {
  using namespace wimpy;

  // A hypothetical next-generation micro server: 4 faster cores, 2 GB RAM,
  // gigabit NIC, still under 3 W.
  hw::HardwareProfile micro = hw::EdisonProfile();
  micro.name = "micro-ng";
  micro.cpu.cores = 4;
  micro.cpu.clock_hz = 1.0e9;
  micro.cpu.dmips_per_thread = 2200;
  micro.memory.total = GB(2);
  micro.memory.peak_bandwidth = GBps(6);
  micro.nic.bandwidth = Gbps(1);
  micro.nic.endpoint_latency = Milliseconds(0.2);
  micro.power.idle = 1.1;
  micro.power.busy = 2.9;
  micro.power.constant_adapter = 0;
  micro.unit_cost_usd = 95;
  hw::ProfileRegistry::Register(micro);

  const auto dell = hw::DellR620Profile();

  TextTable table("Replacement ratios vs Dell R620");
  table.SetHeader({"Profile", "CPU (nameplate)", "CPU (measured)", "RAM",
                   "NIC", "Nodes/Dell"});
  for (const std::string name : {"edison", "micro-ng", "raspberry-pi-2"}) {
    const auto profile = hw::ProfileRegistry::Get(name);
    if (!profile.ok()) continue;
    const auto r = core::ComputeReplacement(*profile, dell);
    table.AddRow({name, TextTable::Ratio(r.by_cpu_nameplate, 1),
                  TextTable::Ratio(r.by_cpu_measured, 1),
                  TextTable::Ratio(r.by_memory, 1),
                  TextTable::Ratio(r.by_nic, 1),
                  std::to_string(r.nodes_to_replace_one)});
  }
  table.Print();

  // TCO of a nameplate-equivalent fleet at 75% utilisation.
  TextTable tco("3-year TCO of a fleet replacing 3 Dell R620 (75% util)");
  tco.SetHeader({"Deployment", "Nodes", "TCO"});
  const auto dell_params = core::TcoParamsFor(dell);
  tco.AddRow({"Dell R620", "3",
              "$" + TextTable::Num(core::TcoUsd(dell_params, 3, 0.75), 0)});
  for (const std::string name : {"edison", "micro-ng"}) {
    const auto profile = hw::ProfileRegistry::Get(name);
    const auto r = core::ComputeReplacement(*profile, dell);
    const int nodes = 3 * r.nodes_to_replace_one;
    const auto params = core::TcoParamsFor(*profile);
    tco.AddRow({name, std::to_string(nodes),
                "$" + TextTable::Num(core::TcoUsd(params, nodes, 0.75), 0)});
  }
  tco.Print();
  return 0;
}
