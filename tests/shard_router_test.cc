// Migration-aware routing (shard/router.h): the serve-old-until-commit
// contract, dirty-write counting for catch-up sizing, and the shape of
// join/leave migration plans.
#include "shard/router.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"

namespace wimpy::shard {
namespace {

RingConfig TestConfig(int replication) {
  RingConfig config;
  config.replication = replication;
  return config;
}

bool ChainContains(const Router::Chain& chain, int node) {
  return std::find(chain.begin(), chain.end(), node) != chain.end();
}

TEST(ShardRouterTest, SteadyStateServesTheRingChains) {
  Router router(TestConfig(2), {0, 1, 2, 3});
  EXPECT_EQ(router.pending_migrations(), 0);
  for (int s = 0; s < router.ring().shards(); ++s) {
    const Router::Chain chain = router.ServingChain(s);
    ASSERT_EQ(chain.length, 2);
    const std::vector<int>& pref = router.Preference(s);
    EXPECT_EQ(chain.nodes[0], pref[0]);
    EXPECT_EQ(chain.nodes[1], pref[1]);
    EXPECT_FALSE(router.migrating(s));
  }
}

TEST(ShardRouterTest, JoinPlansMovesOnlyToTheJoiner) {
  Router router(TestConfig(1), {0, 1, 2, 3, 4, 5});
  const std::vector<Router::ShardMove> moves = router.Join(6);
  EXPECT_FALSE(moves.empty());
  for (const Router::ShardMove& move : moves) {
    EXPECT_EQ(move.to, 6);
    // Data streams from the shard's still-serving old primary.
    EXPECT_EQ(move.from, router.PrimaryOf(move.shard));
    EXPECT_NE(move.from, 6);
    EXPECT_TRUE(router.migrating(move.shard));
  }
  EXPECT_EQ(router.pending_migrations(), static_cast<int>(moves.size()));
}

TEST(ShardRouterTest, ServesOldOwnerUntilCommit) {
  Router router(TestConfig(1), {0, 1, 2, 3, 4, 5});
  const std::vector<Router::ShardMove> moves = router.Join(6);
  ASSERT_FALSE(moves.empty());
  const Router::ShardMove first = moves[0];
  // Pre-commit: routing still answers the old chain; the ring already
  // names the joiner.
  EXPECT_EQ(router.PrimaryOf(first.shard), first.from);
  EXPECT_EQ(router.Preference(first.shard)[0], 6);
  router.Commit(first.shard);
  // Post-commit: the serving chain flipped to the target ring chain.
  EXPECT_EQ(router.PrimaryOf(first.shard), 6);
  EXPECT_FALSE(router.migrating(first.shard));
  EXPECT_EQ(router.pending_migrations(),
            static_cast<int>(moves.size()) - 1);
  EXPECT_EQ(router.commits(), 1);
}

TEST(ShardRouterTest, LeaveKeepsLeaverServingUntilCommit) {
  Router router(TestConfig(2), {0, 1, 2, 3});
  const std::vector<Router::ShardMove> moves = router.Leave(3);
  EXPECT_FALSE(moves.empty());
  for (const Router::ShardMove& move : moves) {
    EXPECT_NE(move.to, 3);  // nothing streams to the leaver
    // Graceful drain: until the shard commits, its serving chain may
    // still contain (and be fronted by) the leaver.
    EXPECT_TRUE(router.migrating(move.shard));
  }
  int still_served_by_leaver = 0;
  for (int s = 0; s < router.ring().shards(); ++s) {
    if (ChainContains(router.ServingChain(s), 3)) ++still_served_by_leaver;
  }
  EXPECT_GT(still_served_by_leaver, 0);
  for (const Router::ShardMove& move : moves) {
    if (router.migrating(move.shard)) router.Commit(move.shard);
  }
  // After full handoff the leaver serves nothing.
  for (int s = 0; s < router.ring().shards(); ++s) {
    EXPECT_FALSE(ChainContains(router.ServingChain(s), 3)) << "shard " << s;
  }
}

TEST(ShardRouterTest, ReorderOnlyShardsCommitInstantly) {
  // With replication == node count every node already holds every
  // shard's data: a join is the only thing that can require movement,
  // but a leave merely shortens/reorders chains — zero data moves, and
  // every affected shard cuts over immediately.
  Router router(TestConfig(3), {0, 1, 2});
  const std::vector<Router::ShardMove> moves = router.Leave(2);
  EXPECT_TRUE(moves.empty());
  EXPECT_EQ(router.pending_migrations(), 0);
  for (int s = 0; s < router.ring().shards(); ++s) {
    EXPECT_FALSE(ChainContains(router.ServingChain(s), 2)) << "shard " << s;
  }
}

TEST(ShardRouterTest, DirtyWritesCountOnlyWhileMigrating) {
  Router router(TestConfig(1), {0, 1, 2, 3, 4, 5});
  router.OnWrite(7);  // steady state: not counted
  EXPECT_EQ(router.TakeDirty(7), 0);
  const std::vector<Router::ShardMove> moves = router.Join(6);
  ASSERT_FALSE(moves.empty());
  const int shard = moves[0].shard;
  router.OnWrite(shard);
  router.OnWrite(shard);
  EXPECT_EQ(router.TakeDirty(shard), 2);
  // Take-and-reset semantics: a second drain sees only newer writes.
  EXPECT_EQ(router.TakeDirty(shard), 0);
  router.OnWrite(shard);
  router.Commit(shard);
  // Post-commit writes land on the new owner; the dirty counter is dead.
  router.OnWrite(shard);
  EXPECT_EQ(router.TakeDirty(shard), 0);
}

}  // namespace
}  // namespace wimpy::shard
