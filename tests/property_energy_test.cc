// Property tests for energy accounting and power envelopes, swept across
// hardware profiles and load levels:
//   * energy equals the exact integral of the piecewise-constant power;
//   * power always stays inside the [idle, busy] envelope;
//   * more work never costs less energy on the same node (monotonicity);
//   * idle power accrues even with zero work.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "hw/profiles.h"
#include "hw/server_node.h"
#include "sim/process.h"
#include "sim/scheduler.h"

namespace wimpy::hw {
namespace {

using EnergyCase = std::tuple<std::string, double>;  // profile, load level

class EnergyProperty : public ::testing::TestWithParam<EnergyCase> {
 protected:
  HardwareProfile Profile() const {
    auto p = ProfileRegistry::Get(std::get<0>(GetParam()));
    EXPECT_TRUE(p.ok());
    return *p;
  }
  double LoadLevel() const { return std::get<1>(GetParam()); }
};

sim::Process DutyCycle(hw::ServerNode& node, double busy_fraction,
                       int cycles, double period) {
  // Alternate busy/idle with the given duty cycle on one core.
  for (int i = 0; i < cycles; ++i) {
    const double busy_time = period * busy_fraction;
    if (busy_time > 0) {
      co_await node.Compute(node.cpu().spec().dmips_per_thread * busy_time);
    }
    co_await sim::Delay(node.scheduler(), period - busy_time);
  }
}

TEST_P(EnergyProperty, EnergyMatchesAnalyticIntegral) {
  sim::Scheduler sched;
  ServerNode node(&sched, Profile(), 0);
  const double duty = LoadLevel();
  sim::Spawn(sched, DutyCycle(node, duty, 10, 2.0));
  sched.Run();
  const double runtime = sched.now();
  ASSERT_NEAR(runtime, 20.0, 1e-6);
  // One core of N busy for duty fraction of the time.
  const auto& p = Profile().power;
  const double core_fraction =
      Profile().cpu.dmips_per_thread / Profile().cpu.total_dmips();
  const double busy_watts =
      p.idle + (p.busy - p.idle) * p.cpu_weight * core_fraction;
  const double expected =
      runtime * (duty * busy_watts + (1 - duty) * p.idle);
  EXPECT_NEAR(node.power().CumulativeJoules(), expected,
              expected * 1e-6 + 1e-9);
}

TEST_P(EnergyProperty, PowerStaysInsideEnvelope) {
  sim::Scheduler sched;
  ServerNode node(&sched, Profile(), 0);
  sim::Spawn(sched, DutyCycle(node, LoadLevel(), 5, 1.0));
  // Sample power at random instants during the run.
  for (double t = 0.25; t < 5.0; t += 0.5) {
    sched.Run(t);
    EXPECT_GE(node.power().current_watts(),
              Profile().power.idle - 1e-12);
    EXPECT_LE(node.power().current_watts(),
              Profile().power.busy + 1e-12);
  }
  sched.Run();
}

TEST_P(EnergyProperty, MoreWorkNeverCostsLessEnergy) {
  const double duty = LoadLevel();
  auto run = [&](double d) {
    sim::Scheduler sched;
    ServerNode node(&sched, Profile(), 0);
    sim::Spawn(sched, DutyCycle(node, d, 10, 2.0));
    sched.Run();
    // Compare over the same 20 s horizon.
    return node.power().CumulativeJoules();
  };
  const double lighter = run(duty * 0.5);
  const double heavier = run(duty);
  EXPECT_GE(heavier + 1e-9, lighter);
}

TEST_P(EnergyProperty, IdleEnergyAccrues) {
  sim::Scheduler sched;
  ServerNode node(&sched, Profile(), 0);
  sched.ScheduleAt(100.0, [] {});
  sched.Run();
  EXPECT_NEAR(node.power().CumulativeJoules(),
              Profile().power.idle * 100.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    ProfileLoadSweep, EnergyProperty,
    ::testing::Combine(::testing::Values("edison", "dell-r620",
                                         "raspberry-pi-2"),
                       ::testing::Values(0.0, 0.25, 0.5, 1.0)),
    [](const ::testing::TestParamInfo<EnergyCase>& info) {
      std::string name = std::get<0>(info.param) + "_load" +
                         std::to_string(static_cast<int>(
                             std::get<1>(info.param) * 100));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace wimpy::hw
