#include "common/table.h"

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/units.h"

namespace wimpy {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t("Power");
  t.SetHeader({"Server state", "Idle", "Busy"});
  t.AddRow({"1 Edison", "0.36W", "0.75W"});
  t.AddRow({"Edison cluster of 35 nodes", "49.0W", "58.8W"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("== Power =="), std::string::npos);
  EXPECT_NE(out.find("| Server state"), std::string::npos);
  // Every rendered row has the same width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t end = out.find('\n', pos);
    const std::string line = out.substr(pos, end - pos);
    if (!line.empty() && line[0] != '=') {
      if (width == 0) width = line.size();
      EXPECT_EQ(line.size(), width) << line;
    }
    pos = end + 1;
  }
}

TEST(TextTableTest, RaggedRowsArePadded) {
  TextTable t("");
  t.SetHeader({"a", "b"});
  t.AddRow({"1"});
  t.AddRow({"1", "2", "3"});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_NE(t.ToString().find("| 3 |"), std::string::npos);
}

TEST(TextTableTest, NumberFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(3.0, 0), "3");
  EXPECT_EQ(TextTable::Ratio(3.5, 1), "3.5x");
}

TEST(CsvWriterTest, EscapesSpecials) {
  CsvWriter w({"name", "note"});
  w.AddRow({"a,b", "says \"hi\"\nbye"});
  const std::string doc = w.ToString();
  EXPECT_NE(doc.find("\"a,b\""), std::string::npos);
  EXPECT_NE(doc.find("\"says \"\"hi\"\"\nbye\""), std::string::npos);
}

TEST(CsvWriterTest, PlainCellsNotQuoted) {
  CsvWriter w({"x"});
  w.AddRow({"plain"});
  EXPECT_EQ(w.ToString(), "x\nplain\n");
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(KiB(1), 1024);
  EXPECT_EQ(MiB(2), 2 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(Mbps(100), 100e6 / 8);
  EXPECT_DOUBLE_EQ(ToMbps(Mbps(93.9)), 93.9);
  EXPECT_DOUBLE_EQ(Milliseconds(250), 0.25);
  EXPECT_DOUBLE_EQ(ToKWh(3.6e6), 1.0);
}

TEST(UnitsTest, Formatting) {
  EXPECT_EQ(FormatBytes(MB(64)), "64.0 MB");
  EXPECT_EQ(FormatBitRate(Gbps(1)), "1.00 Gbit/s");
  EXPECT_EQ(FormatDuration(Milliseconds(18)), "18.0 ms");
  EXPECT_EQ(FormatWatts(58.8), "58.8 W");
  EXPECT_EQ(FormatJoules(17670), "17670 J");
  EXPECT_EQ(FormatJoules(111422), "111 kJ");
}

}  // namespace
}  // namespace wimpy
