#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace wimpy::sim {
namespace {

TEST(SchedulerTest, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.ScheduleAt(2.0, [&] { order.push_back(2); });
  s.ScheduleAt(1.0, [&] { order.push_back(1); });
  s.ScheduleAt(3.0, [&] { order.push_back(3); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3.0);
}

TEST(SchedulerTest, SameTimeEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  double fired_at = -1;
  s.ScheduleAt(5.0, [&] {
    s.ScheduleAfter(2.5, [&] { fired_at = s.now(); });
  });
  s.Run();
  EXPECT_EQ(fired_at, 7.5);
}

TEST(SchedulerTest, PastTimesClampToNow) {
  Scheduler s;
  double fired_at = -1;
  s.ScheduleAt(5.0, [&] {
    s.ScheduleAt(1.0, [&] { fired_at = s.now(); });
  });
  s.Run();
  EXPECT_EQ(fired_at, 5.0);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  EventId id = s.ScheduleAt(1.0, [&] { ++fired; });
  s.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));  // double cancel fails
  s.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, CancelUnknownIdFails) {
  Scheduler s;
  EXPECT_FALSE(s.Cancel(0));
  EXPECT_FALSE(s.Cancel(999));
}

TEST(SchedulerTest, RunUntilStopsClock) {
  Scheduler s;
  int fired = 0;
  s.ScheduleAt(1.0, [&] { ++fired; });
  s.ScheduleAt(10.0, [&] { ++fired; });
  s.Run(/*until=*/5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 5.0);
  EXPECT_EQ(s.pending_events(), 1u);
  s.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 10.0);
}

TEST(SchedulerTest, RunUntilInThePastDoesNotRewindClock) {
  Scheduler s;
  s.ScheduleAt(5.0, [] {});
  s.Run();
  EXPECT_EQ(s.now(), 5.0);
  s.ScheduleAt(9.0, [] {});
  s.Run(/*until=*/1.0);
  EXPECT_EQ(s.now(), 5.0);
}

TEST(SchedulerTest, MaxEventsBudget) {
  Scheduler s;
  int fired = 0;
  for (int i = 0; i < 100; ++i) s.ScheduleAt(i, [&] { ++fired; });
  s.Run(std::numeric_limits<SimTime>::infinity(), 10);
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(s.pending_events(), 90u);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 50) s.ScheduleAfter(1.0, chain);
  };
  s.ScheduleAt(0.0, chain);
  s.Run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(s.now(), 49.0);
  EXPECT_EQ(s.executed_events(), 50u);
}

TEST(SchedulerTest, RunToFiniteUntilOnDrainedQueueLandsClockOnUntil) {
  // The queue draining early must behave like the next-event-beyond-until
  // exit: the clock lands exactly on `until`.
  Scheduler s;
  s.ScheduleAt(1.0, [] {});
  EXPECT_EQ(s.Run(5.0), 1u);
  EXPECT_EQ(s.now(), 5.0);
}

TEST(SchedulerTest, RunToFiniteUntilOnEmptyQueueAdvancesClock) {
  Scheduler s;
  EXPECT_EQ(s.Run(2.5), 0u);
  EXPECT_EQ(s.now(), 2.5);
}

TEST(SchedulerTest, UnboundedRunLeavesClockAtLastEvent) {
  Scheduler s;
  s.ScheduleAt(1.0, [] {});
  s.Run();
  EXPECT_EQ(s.now(), 1.0);
}

TEST(SchedulerTest, StepExecutesExactlyOne) {
  Scheduler s;
  int fired = 0;
  s.ScheduleAt(1.0, [&] { ++fired; });
  s.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(s.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.Step());
  EXPECT_FALSE(s.Step());
}

TEST(SchedulerTest, RescheduleAfterMovesEventKeepingClosure) {
  Scheduler s;
  double fired_at = -1;
  EventId id = s.ScheduleAt(1.0, [&] { fired_at = s.now(); });
  EventId moved = s.RescheduleAfter(id, 5.0);
  EXPECT_NE(moved, 0u);
  EXPECT_NE(moved, id);  // a fresh id, like Cancel + ScheduleAfter
  EXPECT_FALSE(s.Cancel(id));
  s.Run();
  EXPECT_EQ(fired_at, 5.0);
}

TEST(SchedulerTest, RescheduleAfterInvalidIdReturnsZero) {
  Scheduler s;
  EXPECT_EQ(s.RescheduleAfter(0, 1.0), 0u);
  EXPECT_EQ(s.RescheduleAfter(999, 1.0), 0u);
  EventId id = s.ScheduleAt(1.0, [] {});
  ASSERT_TRUE(s.Cancel(id));
  EXPECT_EQ(s.RescheduleAfter(id, 1.0), 0u);
}

TEST(SchedulerTest, RescheduleAfterRepeatedlyDefersLikeWatchdog) {
  Scheduler s;
  int fired = 0;
  EventId id = s.ScheduleAt(1.0, [&] { ++fired; });
  for (int i = 0; i < 100; ++i) {
    id = s.RescheduleAfter(id, 1.0 + i);
    ASSERT_NE(id, 0u);
  }
  s.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 100.0);
}

// Differential check: a stream of reschedules interleaved with other
// traffic must execute in exactly the order Cancel + ScheduleAfter gives.
TEST(SchedulerTest, RescheduleAfterMatchesCancelPlusSchedule) {
  auto run = [](bool in_place) {
    Scheduler s;
    std::vector<std::pair<int, double>> trace;
    std::vector<EventId> ids;
    for (int i = 0; i < 16; ++i) {
      const double t = 1.0 + 0.25 * (i % 5);  // clustered times share chains
      ids.push_back(s.ScheduleAt(t, [&trace, &s, i] {
        trace.emplace_back(i, s.now());
      }));
    }
    for (int i = 0; i < 16; i += 2) {
      const double delay = 0.5 + 0.125 * i;
      if (in_place) {
        ids[i] = s.RescheduleAfter(ids[i], delay);
      } else {
        Scheduler* sp = &s;
        std::vector<std::pair<int, double>>* tp = &trace;
        s.Cancel(ids[i]);
        ids[i] = s.ScheduleAfter(delay, [tp, sp, i] {
          tp->emplace_back(i, sp->now());
        });
      }
      EXPECT_NE(ids[i], 0u);
    }
    s.Run();
    return trace;
  };
  EXPECT_EQ(run(true), run(false));
}

// Rescheduling an event that shares its timestamp chain with others must
// leave the chain-mates intact (tail and mid-chain positions differ in
// the implementation, so cover both by rescheduling each position).
TEST(SchedulerTest, RescheduleAfterLeavesChainMatesIntact) {
  for (int victim = 0; victim < 3; ++victim) {
    Scheduler s;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 3; ++i) {
      ids.push_back(s.ScheduleAt(1.0, [&order, i] { order.push_back(i); }));
    }
    ASSERT_NE(s.RescheduleAfter(ids[victim], 9.0), 0u);
    s.Run();
    ASSERT_EQ(order.size(), 3u) << "victim " << victim;
    EXPECT_EQ(order.back(), victim) << "victim " << victim;
    EXPECT_EQ(s.now(), 9.0);
  }
}

// ---------------------------------------------------------------------------
// Tier-crossing reschedules. The pending set is two-tier (timing wheel
// for short delays, overflow heap beyond the ~65 ms horizon); a
// reschedule must behave identically whichever tier the event leaves or
// lands in. The wheel counters pin that the intended tier was actually
// exercised, so these don't silently degrade into heap-only coverage if
// the geometry changes.

TEST(SchedulerTest, RescheduleAfterCrossesWheelToHeap) {
  Scheduler s;
  double fired_at = -1;
  EventId id = s.ScheduleAt(0.001, [&] { fired_at = s.now(); });
  EXPECT_EQ(s.wheel_inserts(), 1u);  // short delay starts on the wheel
  EXPECT_EQ(s.wheel_overflow_spills(), 0u);
  EventId moved = s.RescheduleAfter(id, 10.0);
  ASSERT_NE(moved, 0u);
  // The new position is past the wheel horizon: it must spill to the
  // heap (the stale wheel chain is dropped lazily at promotion).
  EXPECT_EQ(s.wheel_overflow_spills(), 1u);
  s.Run();
  EXPECT_EQ(fired_at, 10.0);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.wheel_resident_chains(), 0u);
}

TEST(SchedulerTest, RescheduleAfterCrossesHeapToWheel) {
  Scheduler s;
  double fired_at = -1;
  EventId id = s.ScheduleAt(10.0, [&] { fired_at = s.now(); });
  EXPECT_EQ(s.wheel_inserts(), 0u);  // far future starts on the heap
  EXPECT_EQ(s.wheel_overflow_spills(), 1u);
  EventId moved = s.RescheduleAfter(id, 0.001);
  ASSERT_NE(moved, 0u);
  EXPECT_EQ(s.wheel_inserts(), 1u);  // now inside the horizon
  s.Run();
  EXPECT_EQ(fired_at, 0.001);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(SchedulerTest, RescheduleAfterWithinSameWheelBucket) {
  // Old and new position quantize to the same 1 µs wheel tick (and so
  // the same bucket); the rescheduled event must still run strictly
  // after its old chain-mate because its SimTime is later.
  Scheduler s;
  std::vector<int> order;
  EventId a = s.ScheduleAt(0.001, [&] { order.push_back(0); });
  (void)a;
  EventId b = s.ScheduleAt(0.001, [&] { order.push_back(1); });
  const double nudge = 4e-10;  // well inside one tick
  ASSERT_NE(s.RescheduleAfter(b, 0.001 + nudge), 0u);
  EXPECT_EQ(s.wheel_inserts(), 2u);  // old chain + same-bucket new chain
  s.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_GE(s.wheel_promotions(), 1u);
  EXPECT_EQ(s.wheel_resident_chains(), 0u);
}

TEST(SchedulerTest, RescheduleAfterTierRoundTripKeepsClosureAndOrder) {
  // wheel -> heap -> wheel round trip on one event, racing a fixed
  // bystander at the final time; FIFO (schedule order) must decide.
  Scheduler s;
  std::vector<int> order;
  EventId mover = s.ScheduleAt(0.002, [&] { order.push_back(0); });
  s.ScheduleAt(0.005, [&] { order.push_back(1); });
  mover = s.RescheduleAfter(mover, 1.0);    // wheel -> heap
  ASSERT_NE(mover, 0u);
  mover = s.RescheduleAfter(mover, 0.005);  // heap -> wheel, ties bystander
  ASSERT_NE(mover, 0u);
  s.Run();
  ASSERT_EQ(order.size(), 2u);
  // The bystander kept its earlier sequence number; the mover re-entered
  // the schedule order at its last reschedule.
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(s.now(), 0.005);
}

}  // namespace
}  // namespace wimpy::sim
