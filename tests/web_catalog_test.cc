#include "web/catalog.h"

#include <gtest/gtest.h>

namespace wimpy::web {
namespace {

TEST(TableCatalogTest, PaperCatalogHasFifteenTables) {
  const TableCatalog catalog = TableCatalog::PaperCatalog(0.10);
  EXPECT_EQ(catalog.tables().size(), 15u);
  int image_tables = 0;
  for (const auto& t : catalog.tables()) image_tables += t.has_image_blob;
  EXPECT_EQ(image_tables, 4);
}

TEST(TableCatalogTest, ImageProbabilityMatchesRequest) {
  for (double f : {0.0, 0.06, 0.10, 0.20}) {
    const TableCatalog catalog = TableCatalog::PaperCatalog(f);
    EXPECT_NEAR(catalog.ImageProbability(), f, 1e-9) << f;
  }
}

TEST(TableCatalogTest, SampledImageFractionMatches) {
  Rng rng(3);
  const TableCatalog catalog = TableCatalog::PaperCatalog(0.20);
  int images = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    images += catalog.Sample(0.93, rng).is_image;
  }
  EXPECT_NEAR(static_cast<double>(images) / n, 0.20, 0.01);
}

class CatalogReplySizeTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CatalogReplySizeTest, MeanReplySizeTracksPaperColumn) {
  // §5.1.1: average reply sizes 1.5 / 3.8 / 5.8 / 10 KB at image
  // fractions 0 / 6 / 10 / 20%.
  const auto [image_fraction, paper_kb] = GetParam();
  const TableCatalog catalog = TableCatalog::PaperCatalog(image_fraction);
  EXPECT_NEAR(catalog.MeanReplyBytes() / 1000.0, paper_kb,
              paper_kb * 0.18);
  // Sampled mean agrees with the analytic mean.
  Rng rng(7);
  double sum = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(catalog.Sample(0.93, rng).reply_bytes);
  }
  EXPECT_NEAR(sum / n, catalog.MeanReplyBytes(),
              catalog.MeanReplyBytes() * 0.05);
}

INSTANTIATE_TEST_SUITE_P(PaperPoints, CatalogReplySizeTest,
                         ::testing::Values(std::make_pair(0.0, 1.5),
                                           std::make_pair(0.06, 3.8),
                                           std::make_pair(0.10, 5.8),
                                           std::make_pair(0.20, 10.0)));

TEST(TableCatalogTest, CacheHitRatioPassesThrough) {
  Rng rng(11);
  const TableCatalog catalog = TableCatalog::PaperCatalog(0.0);
  int hits = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) hits += catalog.Sample(0.77, rng).cache_hit;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.77, 0.01);
}

}  // namespace
}  // namespace wimpy::web
