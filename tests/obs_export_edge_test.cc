// Exporter edge cases (docs/observability.md): an empty log list still
// renders a valid Chrome trace document, spans left open at the end of a
// run are synthetically closed at the log horizon (nested, flagged), and
// a zero-series metrics render is exactly the CSV header.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace wimpy::obs {
namespace {

TEST(ExportEdgeTest, EmptyLogListRendersValidDocument) {
  const std::string doc = RenderChromeTrace({});
  EXPECT_EQ(doc, "{\"traceEvents\":[\n\n]}\n");
  // A list of empty logs is the same document: no stray commas.
  EXPECT_EQ(RenderChromeTrace({TraceLog{}, TraceLog{}}), doc);
}

TEST(ExportEdgeTest, OpenSpansAreClosedAtHorizonAndFlagged) {
  Tracer tracer;
  // Two spans left open on track 1 (nested) and one on track 2; a later
  // instant on another track sets the horizon past all of them.
  tracer.BeginSpanAt(1.0, "outer", Category::kRequest, 1,
                     TraceContext{4, 10, 0});
  tracer.BeginSpanAt(2.0, "inner", Category::kRequest, 1,
                     TraceContext{4, 11, 10});
  tracer.BeginSpanAt(3.0, "task", Category::kTask, 2);
  tracer.InstantAt(5.0, "late", Category::kApp, 3);
  TraceLog log = tracer.TakeLog();

  const std::string doc = RenderChromeTrace({log});
  // Every B gets an E: the document balances even though the log didn't.
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t flagged = 0;
  std::size_t start = 0;
  std::vector<std::string> lines;
  while (start < doc.size()) {
    std::size_t end = doc.find('\n', start);
    if (end == std::string::npos) end = doc.size();
    lines.push_back(doc.substr(start, end - start));
    start = end + 1;
  }
  std::size_t inner_end_line = 0;
  std::size_t outer_end_line = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.find("\"ph\":\"B\"") != std::string::npos) ++begins;
    if (line.find("\"ph\":\"E\"") != std::string::npos) {
      ++ends;
      // Synthesized closes land at the horizon (5 s -> 5e6 us).
      EXPECT_NE(line.find("\"ts\":5000000"), std::string::npos) << line;
      if (line.find("\"name\":\"inner\"") != std::string::npos) {
        inner_end_line = i;
      }
      if (line.find("\"name\":\"outer\"") != std::string::npos) {
        outer_end_line = i;
      }
    }
    if (line.find("\"closed_at_horizon\":1") != std::string::npos) {
      ++flagged;
    }
  }
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(ends, 3u);
  EXPECT_EQ(flagged, 3u);
  // Innermost-first per track, so B/E stay properly nested for Perfetto.
  EXPECT_LT(inner_end_line, outer_end_line);
  // The synthesized close keeps the causal identity of its begin.
  EXPECT_NE(doc.find("\"trace\":4,\"span\":11,\"parent\":10,"
                     "\"closed_at_horizon\":1"),
            std::string::npos)
      << doc;
}

TEST(ExportEdgeTest, ZeroSeriesMetricsCsvIsHeaderOnly) {
  EXPECT_EQ(RenderMetricsCsv({}), "series,time_s,metric,value\n");
  // Series with no sampled rows add nothing either.
  EXPECT_EQ(RenderMetricsCsv({MetricsSeries{}, MetricsSeries{}}),
            "series,time_s,metric,value\n");
}

}  // namespace
}  // namespace wimpy::obs
