#include "core/diurnal.h"

#include <gtest/gtest.h>

namespace wimpy::core {
namespace {

TEST(DiurnalPatternTest, PeakAndTroughLandWhereExpected) {
  DiurnalPattern pattern;
  pattern.peak_rps = 8000;
  pattern.trough_fraction = 0.25;
  EXPECT_NEAR(pattern.RateAt(16.0), 8000, 1);        // peak hour
  EXPECT_NEAR(pattern.RateAt(4.0), 2000, 1);         // trough hour
  EXPECT_GT(pattern.RateAt(12.0), pattern.RateAt(6.0));
  // Continuous across midnight.
  EXPECT_NEAR(pattern.RateAt(0.0), pattern.RateAt(23.999), 5);
}

TEST(DiurnalEnergyTest, EdisonTierDoesMoreDailyWorkPerJoule) {
  DiurnalPattern pattern;
  pattern.peak_rps = 1800;  // quarter-scale tiers
  const auto edison = MeasureDailyEnergy(web::EdisonWebTestbed(6, 3),
                                         pattern, 4);
  const auto dell = MeasureDailyEnergy(web::DellWebTestbed(1, 1),
                                       pattern, 4);
  ASSERT_EQ(edison.hours.size(), 4u);
  EXPECT_GT(edison.daily_requests, 0.8 * dell.daily_requests);
  EXPECT_LT(edison.daily_joules, dell.daily_joules);
  EXPECT_GT(edison.requests_per_joule, 2.0 * dell.requests_per_joule);
}

TEST(DiurnalEnergyTest, TroughHoursStillBurnDellIdleFloor) {
  DiurnalPattern pattern;
  pattern.peak_rps = 1200;
  pattern.trough_fraction = 0.1;
  const auto dell = MeasureDailyEnergy(web::DellWebTestbed(1, 1),
                                       pattern, 4);
  // Even the quietest sampled hour draws at least the 2-node idle floor
  // (1 web + 1 cache).
  Watts min_power = 1e9;
  for (const auto& h : dell.hours) min_power = std::min(min_power, h.power);
  EXPECT_GT(min_power, 2 * 52.0 * 0.95);
}

}  // namespace
}  // namespace wimpy::core
