// Remaining storage/DVFS edge coverage: random writes, mixed read/write
// contention, ideal-time math, and the Edison governor.
#include <gtest/gtest.h>

#include "hw/dvfs.h"
#include "hw/profiles.h"
#include "hw/server_node.h"
#include "sim/process.h"

namespace wimpy::hw {
namespace {

TEST(StorageEdgeTest, RandomWritePaysWriteLatency) {
  sim::Scheduler sched;
  ServerNode node(&sched, EdisonProfile(), 0);
  double done_at = -1;
  auto op = [&]() -> sim::Process {
    co_await node.storage().RandomWrite(KiB(4));
    done_at = sched.now();
  };
  sim::Spawn(sched, op());
  sched.Run();
  EXPECT_GT(done_at, Milliseconds(18.0));  // 18 ms write latency
  EXPECT_LT(done_at, Milliseconds(20.0));
  EXPECT_EQ(node.storage().bytes_written(), KiB(4));
}

TEST(StorageEdgeTest, MixedReadWriteShareTheChannel) {
  sim::Scheduler sched;
  ServerNode node(&sched, DellR620Profile(), 0);
  double read_done = -1, write_done = -1;
  auto reader = [&]() -> sim::Process {
    co_await node.storage().Read(MB(86.1), /*buffered=*/false);  // ~1 s
    read_done = sched.now();
  };
  auto writer = [&]() -> sim::Process {
    co_await node.storage().Write(MB(24), /*buffered=*/false);  // ~1 s
    write_done = sched.now();
  };
  sim::Spawn(sched, reader());
  sim::Spawn(sched, writer());
  sched.Run();
  // Each op alone takes ~1 s of device time; sharing the channel doubles
  // both.
  EXPECT_NEAR(read_done, 2.0, 0.05);
  EXPECT_NEAR(write_done, 2.0, 0.05);
}

TEST(StorageEdgeTest, IdealTimeMatchesSpec) {
  sim::Scheduler sched;
  ServerNode node(&sched, EdisonProfile(), 0);
  EXPECT_NEAR(node.storage().IdealTime(MB(45), /*write=*/true,
                                       /*buffered=*/false),
              10.0, 1e-9);  // 45 MB at 4.5 MB/s
  EXPECT_NEAR(node.storage().IdealTime(MB(737), false, true), 1.0, 1e-9);
}

TEST(DvfsEdgeTest, EdisonGovernorScalesItsSmallRange) {
  sim::Scheduler sched;
  ServerNode node(&sched, EdisonProfile(), 0);
  DvfsGovernor governor(&node,
                        DefaultDvfsConfig(GovernorPolicy::kPowersave));
  governor.Start();
  auto burn = [&]() -> sim::Process {
    co_await node.Compute(632.3 * 4.0);  // 4 s of one core at nominal
  };
  sim::Spawn(sched, burn());
  sched.Run();
  EXPECT_NEAR(sched.now(), 10.0, 1e-6);  // 0.4x frequency -> 2.5x time
  // The Edison dynamic range is only 0.28 W; even at the lowest P-state
  // power remains dominated by the adapter-laden idle floor.
  EXPECT_GT(node.power().CumulativeJoules(), 1.40 * 10.0 * 0.99);
}

TEST(DvfsEdgeTest, StopFreezesGovernor) {
  sim::Scheduler sched;
  ServerNode node(&sched, DellR620Profile(), 0);
  DvfsGovernor governor(&node,
                        DefaultDvfsConfig(GovernorPolicy::kOndemand));
  governor.Start();
  sched.Run(1.0);
  governor.Stop();
  const int state = governor.current_pstate();
  sched.ScheduleAt(5.0, [] {});
  sched.Run();
  EXPECT_EQ(governor.current_pstate(), state);  // no further sampling
}

}  // namespace
}  // namespace wimpy::hw
