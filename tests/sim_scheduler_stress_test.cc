// Stress and allocation tests for the scheduler hot path.
//
// The stress test drives interleaved ScheduleAt / Cancel / Run against a
// simple model and checks the engine's accounting (`pending_events`,
// `executed_events`, Cancel return values) stays exact through
// cancel-after-fire, double-cancel, cancel of the earliest pending event
// (the heap top), and cancels issued from inside running events.
//
// The allocation tests override global operator new to prove the two hot
// paths are allocation-free once the scheduler's buffers are warm:
// ResumeLater never allocates, and ScheduleAt with captures within
// EventFn::kInlineCapacity never allocates (oversized captures spill and
// are counted by fn_heap_allocations()).
#include <gtest/gtest.h>

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/process.h"
#include "sim/scheduler.h"

namespace {

std::uint64_t g_allocations = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace wimpy;

static_assert(sizeof(sim::EventFn) == 48,
              "EventFn grew; scheduler slots no longer fit a cache line");

// Deterministic 64-bit LCG, same family as the trace tests.
struct Lcg {
  std::uint64_t state;
  std::uint32_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  }
};

struct Rec {
  sim::EventId id = 0;
  double time = 0.0;
  bool fired = false;
  bool cancelled = false;
};

TEST(SchedulerStressTest, InterleavedScheduleCancelRunKeepsExactAccounting) {
  sim::Scheduler sched;
  Lcg rng{12345};
  std::vector<Rec> recs;
  recs.reserve(4096);

  auto live = [&](std::size_t i) {
    return !recs[i].fired && !recs[i].cancelled;
  };
  auto model_pending = [&] {
    std::size_t n = 0;
    for (std::size_t i = 0; i < recs.size(); ++i) n += live(i);
    return n;
  };
  auto model_fired = [&] {
    std::size_t n = 0;
    for (const Rec& r : recs) n += r.fired;
    return n;
  };
  // Index of the earliest live event in (time, schedule order) — the
  // engine's current heap top.
  auto earliest_live = [&]() -> std::ptrdiff_t {
    std::ptrdiff_t best = -1;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (!live(i)) continue;
      if (best < 0 || recs[i].time < recs[best].time) best = i;
    }
    return best;
  };

  for (int round = 0; round < 300; ++round) {
    // Schedule a burst. Coarse timestamps force same-time chains.
    const int burst = 1 + static_cast<int>(rng.Next() % 8);
    for (int k = 0; k < burst; ++k) {
      const double t = sched.now() + (rng.Next() % 64) * 0.25;
      const std::size_t idx = recs.size();
      recs.push_back(Rec{0, t, false, false});
      std::vector<Rec>* rs = &recs;
      recs[idx].id = sched.ScheduleAt(t, [rs, idx] {
        ASSERT_FALSE((*rs)[idx].fired) << "event fired twice";
        ASSERT_FALSE((*rs)[idx].cancelled) << "cancelled event fired";
        (*rs)[idx].fired = true;
      });
      EXPECT_NE(recs[idx].id, 0u);
    }

    // Random cancels, including already-fired and already-cancelled ids:
    // Cancel must return exactly the model's liveness, and a second
    // Cancel of the same id must return false.
    for (int k = 0; k < 3; ++k) {
      const std::size_t i = rng.Next() % recs.size();
      const bool was_live = live(i);
      EXPECT_EQ(sched.Cancel(recs[i].id), was_live) << "idx " << i;
      if (was_live) recs[i].cancelled = true;
      EXPECT_FALSE(sched.Cancel(recs[i].id)) << "double-cancel idx " << i;
    }

    // Periodically cancel the engine's current heap top.
    if (round % 5 == 0) {
      const std::ptrdiff_t top = earliest_live();
      if (top >= 0) {
        EXPECT_TRUE(sched.Cancel(recs[top].id));
        recs[top].cancelled = true;
      }
    }

    // Occasionally schedule an event that cancels another one in-flight.
    if (round % 7 == 0 && !recs.empty()) {
      const std::size_t victim = rng.Next() % recs.size();
      const double t = sched.now() + (rng.Next() % 64) * 0.25;
      const std::size_t idx = recs.size();
      recs.push_back(Rec{0, t, false, false});
      std::vector<Rec>* rs = &recs;
      sim::Scheduler* sp = &sched;
      recs[idx].id = sched.ScheduleAt(t, [rs, idx, victim, sp] {
        (*rs)[idx].fired = true;
        Rec& v = (*rs)[victim];
        const bool was_live = !v.fired && !v.cancelled;
        EXPECT_EQ(sp->Cancel(v.id), was_live) << "in-event cancel";
        if (was_live) v.cancelled = true;
      });
    }

    EXPECT_EQ(sched.pending_events(), model_pending());

    // Advance a short window and reconcile against the model.
    const double until = sched.now() + (rng.Next() % 12) * 0.5;
    sched.Run(until);
    EXPECT_EQ(sched.now(), until);
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (recs[i].cancelled) {
        EXPECT_FALSE(recs[i].fired) << "idx " << i;
      } else {
        EXPECT_EQ(recs[i].fired, recs[i].time <= until) << "idx " << i;
      }
    }
    EXPECT_EQ(sched.executed_events(), model_fired());
    EXPECT_EQ(sched.pending_events(), model_pending());
  }

  // Drain: everything not cancelled fires exactly once.
  sched.Run();
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.pending_events(), 0u);
  EXPECT_EQ(sched.executed_events(), model_fired());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_NE(recs[i].fired, recs[i].cancelled) << "idx " << i;
  }
  EXPECT_EQ(sched.fn_heap_allocations(), 0u)
      << "a stress-test capture spilled past EventFn::kInlineCapacity";
}

// Minimal self-destroying coroutine: resuming it runs the body once and
// frees the frame at final suspend.
struct FireOnce {
  struct promise_type {
    FireOnce get_return_object() {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::abort(); }
  };
  std::coroutine_handle<promise_type> handle;
};

FireOnce Bump(int* counter) {
  ++*counter;
  co_return;
}

TEST(SchedulerAllocationTest, ResumeLaterPathIsAllocationFree) {
  constexpr int kWaves = 64;
  sim::Scheduler sched;
  int resumed = 0;

  // Warm-up wave: grows the fast-lane ring (and allocates the coroutine
  // frames for this wave) before measurement starts.
  std::vector<std::coroutine_handle<>> handles;
  handles.reserve(kWaves);
  for (int i = 0; i < kWaves; ++i) handles.push_back(Bump(&resumed).handle);
  for (auto h : handles) sched.ResumeLater(h);
  sched.Run();
  ASSERT_EQ(resumed, kWaves);

  // Measured wave: frames are allocated up front; the ResumeLater calls
  // and the drain must not allocate at all.
  handles.clear();
  for (int i = 0; i < kWaves; ++i) handles.push_back(Bump(&resumed).handle);
  const std::uint64_t before = g_allocations;
  for (auto h : handles) sched.ResumeLater(h);
  sched.Run();
  EXPECT_EQ(g_allocations, before) << "ResumeLater/drain allocated";
  EXPECT_EQ(resumed, 2 * kWaves);
  EXPECT_EQ(sched.fast_lane_resumes(), 2u * kWaves);
}

TEST(SchedulerAllocationTest, SmallCaptureSchedulePathIsAllocationFree) {
  constexpr int kEvents = 256;
  sim::Scheduler sched;
  int fired = 0;

  // Warm-up: sizes the slot pool, heap, and chain cache.
  for (int i = 0; i < kEvents; ++i) {
    sched.ScheduleAt(static_cast<double>(i % 17), [&fired] { ++fired; });
  }
  sched.Run();
  ASSERT_EQ(fired, kEvents);

  const std::uint64_t before = g_allocations;
  for (int i = 0; i < kEvents; ++i) {
    sched.ScheduleAfter(static_cast<double>(i % 17), [&fired] { ++fired; });
  }
  sched.Run();
  EXPECT_EQ(g_allocations, before) << "warm schedule/run allocated";
  EXPECT_EQ(fired, 2 * kEvents);
  EXPECT_EQ(sched.fn_heap_allocations(), 0u);
}

TEST(SchedulerAllocationTest, OversizedCaptureSpillsAndIsCounted) {
  sim::Scheduler sched;
  char big[sim::EventFn::kInlineCapacity + 24] = {1};
  bool fired = false;
  sched.ScheduleAt(1.0, [big, &fired] { fired = big[0] == 1; });
  EXPECT_EQ(sched.fn_heap_allocations(), 1u);
  sched.Run();
  EXPECT_TRUE(fired);
}

}  // namespace
