#include "core/report.h"

#include <gtest/gtest.h>

namespace wimpy::core {
namespace {

TEST(ReportEntryTest, VerdictMath) {
  ReportEntry e{"x", "m", 100.0, 110.0, 0.15};
  EXPECT_NEAR(e.RelativeError(), 0.10, 1e-12);
  EXPECT_TRUE(e.Holds());
  e.measured_value = 130.0;
  EXPECT_FALSE(e.Holds());
  e.paper_value = 0;  // degenerate reference
  EXPECT_EQ(e.RelativeError(), 0.0);
}

TEST(ReportTest, RenderingContainsVerdicts) {
  ReproductionReport report;
  report.entries.push_back({"Table 2", "nodes", 16, 16, 0.01});
  report.entries.push_back({"Fig 4", "ratio", 3.5, 10.0, 0.2});
  EXPECT_EQ(report.holds(), 1);
  EXPECT_EQ(report.diverged(), 1);
  EXPECT_FALSE(report.AllHold());
  const std::string text = report.ToText();
  EXPECT_NE(text.find("holds"), std::string::npos);
  EXPECT_NE(text.find("DIVERGED"), std::string::npos);
  const std::string md = report.ToMarkdown();
  EXPECT_NE(md.find("| Table 2 |"), std::string::npos);
  EXPECT_NE(md.find("1/2 shapes hold"), std::string::npos);
}

TEST(ReportTest, FullChecksHold) {
  // The CI-gate property: every headline claim must currently hold.
  const auto report = RunReproductionChecks();
  EXPECT_GE(report.entries.size(), 20u);
  for (const auto& entry : report.entries) {
    EXPECT_TRUE(entry.Holds())
        << entry.experiment << " / " << entry.metric << ": paper "
        << entry.paper_value << " measured " << entry.measured_value;
  }
}

}  // namespace
}  // namespace wimpy::core
