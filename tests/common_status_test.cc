#include "common/status.h"

#include <gtest/gtest.h>

namespace wimpy {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad block size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad block size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad block size");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kAborted); ++c) {
    EXPECT_FALSE(StatusCodeName(static_cast<StatusCode>(c)).empty());
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("no row");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

StatusOr<double> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2.0;
}

Status CheckAll() {
  WIMPY_RETURN_IF_ERROR(Half(4).status());
  WIMPY_RETURN_IF_ERROR(Half(3).status());
  return Status::Ok();  // unreachable
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  Status s = CheckAll();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wimpy
