#include "hw/dvfs.h"

#include <gtest/gtest.h>

#include "hw/profiles.h"
#include "sim/process.h"

namespace wimpy::hw {
namespace {

sim::Process BurnOneCore(ServerNode& node, double seconds_at_full) {
  co_await node.Compute(node.cpu().spec().dmips_per_thread *
                        seconds_at_full);
}

TEST(DvfsTest, PerformancePolicyKeepsNominalSpeed) {
  sim::Scheduler sched;
  ServerNode node(&sched, DellR620Profile(), 0);
  DvfsGovernor governor(&node,
                        DefaultDvfsConfig(GovernorPolicy::kPerformance));
  governor.Start();
  sim::Spawn(sched, BurnOneCore(node, 10.0));
  sched.Run();
  EXPECT_NEAR(sched.now(), 10.0, 1e-6);
  EXPECT_EQ(governor.current_pstate(), 0);
}

TEST(DvfsTest, PowersaveSlowsWorkAndCutsCpuPower) {
  sim::Scheduler sched;
  ServerNode node(&sched, DellR620Profile(), 0);
  DvfsGovernor governor(&node,
                        DefaultDvfsConfig(GovernorPolicy::kPowersave));
  governor.Start();
  sim::Spawn(sched, BurnOneCore(node, 10.0));
  sched.Run();
  // Lowest state is 40% frequency: the same work takes 2.5x longer.
  EXPECT_NEAR(sched.now(), 25.0, 1e-6);
  EXPECT_LT(node.power().cpu_dynamic_scale(), 0.3);
}

TEST(DvfsTest, OndemandRampsUpUnderLoadAndDownWhenIdle) {
  sim::Scheduler sched;
  ServerNode node(&sched, DellR620Profile(), 0);
  DvfsConfig config = DefaultDvfsConfig(GovernorPolicy::kOndemand);
  DvfsGovernor governor(&node, config);
  governor.Start();
  // Idle first: the governor steps down to the slowest state.
  sched.Run(2.0);
  EXPECT_EQ(governor.current_pstate(),
            static_cast<int>(config.pstates.size()) - 1);
  // Saturate all threads: it must jump back to the top state.
  for (int i = 0; i < node.cpu().vcores(); ++i) {
    sim::Spawn(sched, BurnOneCore(node, 5.0));
  }
  sched.Run(4.0);
  EXPECT_EQ(governor.current_pstate(), 0);
  EXPECT_GE(governor.transitions(), 2);
  governor.Stop();
  sched.Run();
}

TEST(DvfsTest, OndemandIsNearNeutralOnBurstyLoad) {
  // The §1 critique, part 1: for bursty loads the governor races back to
  // the top state as soon as a burst lands, so DVFS moves whole-node
  // energy by only a few percent either way.
  auto run = [](bool with_dvfs) {
    sim::Scheduler sched;
    ServerNode node(&sched, DellR620Profile(), 0);
    DvfsGovernor governor(&node,
                          DefaultDvfsConfig(GovernorPolicy::kOndemand));
    if (with_dvfs) governor.Start();
    auto duty = [](ServerNode& n) -> sim::Process {
      for (int i = 0; i < 10; ++i) {
        co_await n.Compute(n.cpu().spec().dmips_per_thread * 0.4);
        co_await sim::Delay(n.scheduler(), 9.0);
      }
    };
    sim::Spawn(sched, duty(node));
    // Energy over a fixed 100 s horizon, regardless of work stretching.
    Joules at_horizon = 0;
    sched.ScheduleAt(100.0, [&] {
      at_horizon = node.power().CumulativeJoules();
    });
    sched.Run(100.0);
    governor.Stop();
    sched.Run();
    return at_horizon;
  };
  const Joules fixed = run(false);
  const Joules scaled = run(true);
  EXPECT_NEAR(scaled, fixed, 0.10 * fixed);
}

TEST(DvfsTest, PowersaveSavesOnlyMarginallyOnFixedWork) {
  // The §1 critique, part 2: stretching fixed work across a slower,
  // longer window trades lower CPU dynamic power against a longer time
  // at the non-proportional floor — the net never approaches real
  // proportionality.
  auto run = [](GovernorPolicy policy) {
    sim::Scheduler sched;
    ServerNode node(&sched, DellR620Profile(), 0);
    DvfsGovernor governor(&node, DefaultDvfsConfig(policy));
    governor.Start();
    auto work = [](ServerNode& n) -> sim::Process {
      for (int t = 0; t < n.cpu().vcores(); ++t) {
        sim::Spawn(n.scheduler(), [](ServerNode& m) -> sim::Process {
          co_await m.Compute(m.cpu().spec().dmips_per_thread * 20.0);
        }(n));
      }
      co_return;
    };
    sim::Spawn(sched, work(node));
    // Common 200 s horizon: finish + idle for the fast policy.
    Joules at_horizon = 0;
    sched.ScheduleAt(200.0, [&] {
      at_horizon = node.power().CumulativeJoules();
    });
    sched.Run(200.0);
    governor.Stop();
    sched.Run();
    return at_horizon;
  };
  const Joules fast = run(GovernorPolicy::kPerformance);
  const Joules slow = run(GovernorPolicy::kPowersave);
  // Even with generous cubic V^2 f scaling, the 52 W idle/static floor
  // bounds whole-node savings to a few percent — far from the
  // proportionality DVFS promises (§1: best cases reach only ~30%).
  EXPECT_GT(slow, 0.70 * fast);
  EXPECT_LT(slow, 1.05 * fast);
}

TEST(DvfsTest, DvfsCannotBeatIdlePowerFloor) {
  sim::Scheduler sched;
  ServerNode node(&sched, DellR620Profile(), 0);
  DvfsGovernor governor(&node,
                        DefaultDvfsConfig(GovernorPolicy::kPowersave));
  governor.Start();
  sched.ScheduleAt(100.0, [] {});
  sched.Run();
  // An idle node draws idle power regardless of P-state.
  EXPECT_NEAR(node.power().CumulativeJoules(), 52.0 * 100.0, 1e-6);
}

}  // namespace
}  // namespace wimpy::hw
