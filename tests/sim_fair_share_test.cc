#include "sim/fair_share.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/process.h"
#include "sim/scheduler.h"

namespace wimpy::sim {
namespace {

Process ServeOne(FairShareServer& server, double demand, Scheduler& sched,
                 double* done_at) {
  co_await server.Serve(demand);
  *done_at = sched.now();
}

TEST(FairShareTest, SingleJobRunsAtPerJobCap) {
  Scheduler sched;
  // Capacity 100/s but a single job can only use 10/s (one core of ten).
  FairShareServer server(&sched, 100.0, 10.0);
  double done_at = -1;
  Spawn(sched, ServeOne(server, 50.0, sched, &done_at));
  sched.Run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
}

TEST(FairShareTest, UncappedJobUsesFullCapacity) {
  Scheduler sched;
  FairShareServer server(&sched, 100.0);
  double done_at = -1;
  Spawn(sched, ServeOne(server, 50.0, sched, &done_at));
  sched.Run();
  EXPECT_NEAR(done_at, 0.5, 1e-9);
}

TEST(FairShareTest, EqualJobsShareEqually) {
  Scheduler sched;
  FairShareServer server(&sched, 10.0);
  std::vector<double> done(4, -1);
  for (int i = 0; i < 4; ++i) {
    Spawn(sched, ServeOne(server, 10.0, sched, &done[i]));
  }
  sched.Run();
  // 4 jobs × 10 units at 10 units/s total -> all finish at t=4.
  for (double t : done) EXPECT_NEAR(t, 4.0, 1e-9);
}

TEST(FairShareTest, ShortJobLeavesMoreRateForLongJob) {
  Scheduler sched;
  FairShareServer server(&sched, 10.0);
  double short_done = -1, long_done = -1;
  Spawn(sched, ServeOne(server, 10.0, sched, &short_done));
  Spawn(sched, ServeOne(server, 30.0, sched, &long_done));
  sched.Run();
  // Shared at 5/s until the short job finishes 10 units at t=2;
  // the long job then has 20 left at 10/s -> finishes at t=4.
  EXPECT_NEAR(short_done, 2.0, 1e-9);
  EXPECT_NEAR(long_done, 4.0, 1e-9);
}

TEST(FairShareTest, LateArrivalSlowsInFlightJob) {
  Scheduler sched;
  FairShareServer server(&sched, 10.0);
  double first_done = -1, second_done = -1;
  Spawn(sched, ServeOne(server, 20.0, sched, &first_done));
  sched.ScheduleAt(1.0, [&] {
    Spawn(sched, ServeOne(server, 5.0, sched, &second_done));
  });
  sched.Run();
  // First job: 10 units in [0,1) alone, then shares 5/s. It has 10 left.
  // Second job: 5 units at 5/s -> done at t=2. First finishes its remaining
  // 5 units at 10/s -> t=2.5.
  EXPECT_NEAR(second_done, 2.0, 1e-9);
  EXPECT_NEAR(first_done, 2.5, 1e-9);
}

TEST(FairShareTest, PerJobCapLimitsScalingUntilSaturation) {
  Scheduler sched;
  // 2 "cores" of 10/s each: capacity 20, cap 10.
  FairShareServer server(&sched, 20.0, 10.0);
  std::vector<double> done(2, -1);
  for (int i = 0; i < 2; ++i) {
    Spawn(sched, ServeOne(server, 10.0, sched, &done[i]));
  }
  sched.Run();
  // Both jobs get a full core: finish at t=1, not t=2.
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 1.0, 1e-9);
}

TEST(FairShareTest, BusyFractionTracksSaturation) {
  Scheduler sched;
  FairShareServer server(&sched, 20.0, 10.0);
  EXPECT_DOUBLE_EQ(server.busy_fraction(), 0.0);
  std::vector<double> done(3, -1);
  std::vector<double> busy_samples;
  server.SetUsageListener(
      [&](double busy) { busy_samples.push_back(busy); });
  Spawn(sched, ServeOne(server, 10.0, sched, &done[0]));
  sched.Run();
  Spawn(sched, ServeOne(server, 10.0, sched, &done[1]));
  Spawn(sched, ServeOne(server, 10.0, sched, &done[2]));
  sched.Run();
  // 1 job -> 0.5 busy; 2 jobs -> 1.0; 3 jobs -> still 1.0 (saturated).
  EXPECT_EQ(busy_samples.front(), 0.5);
  EXPECT_EQ(busy_samples.back(), 0.0);  // idle again at the end
  double peak = 0;
  for (double b : busy_samples) peak = std::max(peak, b);
  EXPECT_DOUBLE_EQ(peak, 1.0);
}

TEST(FairShareTest, AverageBusyFractionIntegratesHistory) {
  Scheduler sched;
  FairShareServer server(&sched, 10.0);
  double done_at = -1;
  Spawn(sched, ServeOne(server, 10.0, sched, &done_at));
  sched.Run();
  ASSERT_NEAR(done_at, 1.0, 1e-9);
  // Busy for [0,1], idle afterwards; check the average at t=1 -> 1.0.
  EXPECT_NEAR(server.AverageBusyFraction(), 1.0, 1e-9);
  sched.ScheduleAt(3.0, [] {});
  sched.Run();
  EXPECT_NEAR(server.AverageBusyFraction(), 1.0 / 3.0, 1e-9);
}

TEST(FairShareTest, ZeroDemandCompletesWithoutSuspension) {
  Scheduler sched;
  FairShareServer server(&sched, 10.0);
  double done_at = -1;
  Spawn(sched, ServeOne(server, 0.0, sched, &done_at));
  sched.Run();
  EXPECT_EQ(done_at, 0.0);
  EXPECT_EQ(server.active_jobs(), 0u);
}

TEST(FairShareTest, SetCapacityAffectsInFlightWork) {
  Scheduler sched;
  FairShareServer server(&sched, 10.0);
  double done_at = -1;
  Spawn(sched, ServeOne(server, 20.0, sched, &done_at));
  sched.ScheduleAt(1.0, [&] { server.SetCapacity(20.0); });
  sched.Run();
  // 10 units in [0,1), remaining 10 at 20/s -> t=1.5.
  EXPECT_NEAR(done_at, 1.5, 1e-9);
}

TEST(FairShareTest, TotalWorkServedAccumulates) {
  Scheduler sched;
  FairShareServer server(&sched, 10.0);
  std::vector<double> done(3, -1);
  for (int i = 0; i < 3; ++i) {
    Spawn(sched, ServeOne(server, 7.0, sched, &done[i]));
  }
  sched.Run();
  EXPECT_NEAR(server.total_work_served(), 21.0, 1e-6);
}

TEST(FairShareTest, ManyStaggeredJobsAllComplete) {
  Scheduler sched;
  FairShareServer server(&sched, 3.0, 1.0);
  int completed = 0;
  auto job = [&](double demand) -> Process {
    co_await server.Serve(demand);
    ++completed;
  };
  for (int i = 0; i < 50; ++i) {
    const double demand = 1.0 + (i % 7);
    sched.ScheduleAt(0.1 * i, [&, demand] { Spawn(sched, job(demand)); });
  }
  sched.Run();
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(server.active_jobs(), 0u);
  EXPECT_DOUBLE_EQ(server.busy_fraction(), 0.0);
}

}  // namespace
}  // namespace wimpy::sim
