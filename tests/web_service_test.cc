#include "web/service.h"

#include <gtest/gtest.h>

#include "web/workload.h"

namespace wimpy::web {
namespace {

TEST(WorkloadMixTest, MeanReplySizesMatchPaper) {
  // §5.1.1: average reply sizes 1.5 / 3.8 / 5.8 / 10 KB at 0/6/10/20%.
  EXPECT_NEAR(LightMix().MeanReplyBytes(), 1500, 50);
  EXPECT_NEAR(MixWithImagePercent(0.06).MeanReplyBytes(), 3800, 300);
  EXPECT_NEAR(MixWithImagePercent(0.10).MeanReplyBytes(), 5750, 300);
  EXPECT_NEAR(HeavyMix().MeanReplyBytes(), 10000, 500);
}

TEST(WorkloadMixTest, SampleRespectsProbabilities) {
  Rng rng(7);
  const WorkloadMix mix = HeavyMix();
  int images = 0, hits = 0;
  const int n = 20000;
  double reply_sum = 0;
  for (int i = 0; i < n; ++i) {
    const RequestSpec spec = mix.Sample(rng);
    images += spec.is_image;
    hits += spec.cache_hit;
    reply_sum += static_cast<double>(spec.reply_bytes);
    EXPECT_GE(spec.reply_bytes, 128);
  }
  EXPECT_NEAR(images / static_cast<double>(n), 0.20, 0.01);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.93, 0.01);
  EXPECT_NEAR(reply_sum / n, mix.MeanReplyBytes(), 500);
}

TEST(WebExperimentTest, TunedCallsFollowPaperPolicy) {
  // More calls per connection at low concurrency, fewer at high.
  EXPECT_EQ(WebExperiment::TunedCallsPerConnection(8), 14);
  EXPECT_EQ(WebExperiment::TunedCallsPerConnection(512), 14);
  EXPECT_EQ(WebExperiment::TunedCallsPerConnection(1024), 7);
  EXPECT_EQ(WebExperiment::TunedCallsPerConnection(2048), 4);
}

TEST(WebExperimentTest, LowConcurrencyDeliversOfferedLoad) {
  WebExperiment exp(EdisonWebTestbed(6, 3));
  const LevelReport report =
      exp.MeasureClosedLoop(LightMix(), 32, 8, Seconds(2), Seconds(10));
  // Offered: 32 conn/s x 8 calls = 256 rps; the cluster is far from
  // saturation, so throughput tracks the offered load.
  EXPECT_NEAR(report.achieved_rps, 256, 40);
  EXPECT_LT(report.error_rate, 0.01);
  EXPECT_GT(report.mean_response, 0);
  EXPECT_LT(report.mean_response, Milliseconds(100));
  EXPECT_GT(report.middle_tier_power, 0);
}

TEST(WebExperimentTest, OverloadProducesServerErrors) {
  // 3 web servers offered ~25x their capacity.
  WebExperiment exp(EdisonWebTestbed(3, 2));
  const LevelReport report =
      exp.MeasureClosedLoop(LightMix(), 2048, 14, Seconds(2), Seconds(8));
  EXPECT_GT(report.error_rate, 0.2);
  EXPECT_LT(report.achieved_rps, 2048 * 14 * 0.5);
}

TEST(WebExperimentTest, DelayDecompositionRecorded) {
  WebExperiment exp(EdisonWebTestbed(4, 2));
  const LevelReport report =
      exp.MeasureClosedLoop(HeavyMix(), 32, 8, Seconds(2), Seconds(8));
  // 93% cache hits: cache fetches dominate counts; misses hit the DB.
  EXPECT_GT(report.cache_delay.count(), report.db_delay.count());
  EXPECT_GT(report.db_delay.count(), 0u);
  // The DB is two Dell machines across a room link; a fetch takes
  // milliseconds, not microseconds or seconds.
  EXPECT_GT(report.db_delay.mean(), Milliseconds(1));
  EXPECT_LT(report.db_delay.mean(), Milliseconds(100));
  EXPECT_LE(report.cache_delay.mean() + report.db_delay.mean(),
            report.total_delay.mean() * 2.0);
}

TEST(WebExperimentTest, UtilisationReported) {
  WebExperiment exp(EdisonWebTestbed(4, 2));
  const LevelReport report =
      exp.MeasureClosedLoop(LightMix(), 128, 8, Seconds(2), Seconds(8));
  EXPECT_GT(report.web_cpu_pct, 1.0);
  EXPECT_LT(report.web_cpu_pct, 100.0);
  EXPECT_GE(report.cache_cpu_pct, 0.0);
  EXPECT_GT(report.cache_memory_pct, 10.0);  // warmed cache footprint
}

TEST(WebExperimentTest, OpenLoopHistogramCollectsDelays) {
  WebExperiment exp(EdisonWebTestbed(4, 2));
  const OpenLoopReport report =
      exp.MeasureOpenLoop(LightMix(), 200, Seconds(8));
  EXPECT_NEAR(report.achieved_rps, 200, 40);
  EXPECT_GT(report.delay_histogram.total(), 1000u);
  // At this easy load the delays concentrate in the first bucket.
  EXPECT_EQ(report.delay_histogram.ArgMaxBucket(), 0u);
  EXPECT_GT(report.client_delay.mean(), 0.0);
}

TEST(WebExperimentTest, EdisonFasterResponseAtLowLoadThanUnderStress) {
  WebExperiment exp(EdisonWebTestbed(4, 2));
  const LevelReport light =
      exp.MeasureClosedLoop(LightMix(), 32, 8, Seconds(2), Seconds(8));
  const LevelReport stressed =
      exp.MeasureClosedLoop(LightMix(), 512, 8, Seconds(2), Seconds(8));
  EXPECT_GT(stressed.mean_response, light.mean_response);
}

}  // namespace
}  // namespace wimpy::web
