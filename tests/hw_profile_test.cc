#include "hw/profiles.h"

#include <gtest/gtest.h>

namespace wimpy::hw {
namespace {

TEST(ProfileTest, EdisonMatchesPaperSection4) {
  const HardwareProfile p = EdisonProfile();
  EXPECT_EQ(p.cpu.cores, 2);
  EXPECT_DOUBLE_EQ(p.cpu.dmips_per_thread, 632.3);
  EXPECT_DOUBLE_EQ(p.cpu.total_dmips(), 1264.6);
  EXPECT_EQ(p.memory.total, GB(1));
  EXPECT_DOUBLE_EQ(ToMbps(p.nic.bandwidth), 100.0);
  EXPECT_DOUBLE_EQ(p.power.idle, 1.40);
  EXPECT_DOUBLE_EQ(p.power.busy, 1.68);
  EXPECT_DOUBLE_EQ(p.unit_cost_usd, 120.0);
}

TEST(ProfileTest, DellMatchesPaperSection4) {
  const HardwareProfile p = DellR620Profile();
  EXPECT_EQ(p.cpu.hardware_threads(), 12);
  EXPECT_DOUBLE_EQ(p.cpu.dmips_per_thread, 11383.0);
  EXPECT_EQ(p.memory.total, GB(16));
  EXPECT_DOUBLE_EQ(ToMbps(p.nic.bandwidth), 1000.0);
  EXPECT_DOUBLE_EQ(p.power.idle, 52.0);
  EXPECT_DOUBLE_EQ(p.power.busy, 109.0);
}

TEST(ProfileTest, MeasuredCpuGapIsAboutOneHundredX) {
  // §4.1/§7: the whole-node CPU gap is ~100x, an order of magnitude above
  // the 12x nameplate clock gap.
  const double gap =
      DellR620Profile().cpu.total_dmips() / EdisonProfile().cpu.total_dmips();
  EXPECT_GT(gap, 90.0);
  EXPECT_LT(gap, 108.0);
}

TEST(ProfileTest, SingleThreadGapMatchesDhrystone) {
  const double gap = DellR620Profile().cpu.dmips_per_thread /
                     EdisonProfile().cpu.dmips_per_thread;
  EXPECT_NEAR(gap, 18.0, 0.1);  // 11383 / 632.3
}

TEST(ProfileTest, MemoryBandwidthGapSixteenX) {
  const double gap = DellR620Profile().memory.peak_bandwidth /
                     EdisonProfile().memory.peak_bandwidth;
  EXPECT_NEAR(gap, 16.36, 0.1);  // 36 / 2.2
}

TEST(ProfileTest, ClusterPowerEndpointsMatchTable3) {
  const HardwareProfile edison = EdisonProfile();
  EXPECT_NEAR(35 * edison.power.idle, 49.0, 0.01);
  EXPECT_NEAR(35 * edison.power.busy, 58.8, 0.01);
  const HardwareProfile dell = DellR620Profile();
  EXPECT_NEAR(3 * dell.power.idle, 156.0, 0.01);
  EXPECT_NEAR(3 * dell.power.busy, 327.0, 0.01);
}

TEST(ProfileTest, RegistryHasBuiltins) {
  auto names = ProfileRegistry::Names();
  EXPECT_GE(names.size(), 3u);
  auto edison = ProfileRegistry::Get("edison");
  ASSERT_TRUE(edison.ok());
  EXPECT_EQ(edison->name, "edison");
  EXPECT_FALSE(ProfileRegistry::Get("cray-1").ok());
}

TEST(ProfileTest, RegistryAcceptsCustomProfiles) {
  HardwareProfile custom = RaspberryPi2Profile();
  custom.name = "test-board";
  custom.cpu.cores = 8;
  ProfileRegistry::Register(custom);
  auto got = ProfileRegistry::Get("test-board");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->cpu.cores, 8);
}

TEST(ProfileTest, StorageRatesMatchTable5Ratios) {
  const auto e = EdisonProfile().storage;
  const auto d = DellR620Profile().storage;
  EXPECT_NEAR(d.write_direct / e.write_direct, 5.3, 0.1);
  EXPECT_NEAR(d.write_buffered / e.write_buffered, 8.9, 0.1);
  EXPECT_NEAR(d.read_direct / e.read_direct, 4.4, 0.1);
  EXPECT_NEAR(e.write_latency / d.write_latency, 3.6, 0.1);
  EXPECT_NEAR(e.read_latency / d.read_latency, 8.4, 0.1);
}

}  // namespace
}  // namespace wimpy::hw
