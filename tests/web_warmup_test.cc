#include "web/warmup.h"

#include <gtest/gtest.h>

namespace wimpy::web {
namespace {

TEST(ZipfCoverageTest, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(ZipfCoverage(0, 1000, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ZipfCoverage(1000, 1000, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ZipfCoverage(2000, 1000, 1.0), 1.0);  // clamped
}

TEST(ZipfCoverageTest, MonotoneInCacheAndSkew) {
  double prev = 0;
  for (double k : {10.0, 100.0, 1000.0, 10000.0}) {
    const double c = ZipfCoverage(k, 1e6, 1.0);
    EXPECT_GT(c, prev);
    prev = c;
  }
  // Heavier skew -> better coverage at equal cache size.
  EXPECT_GT(ZipfCoverage(1000, 1e6, 1.2), ZipfCoverage(1000, 1e6, 1.0));
  EXPECT_GT(ZipfCoverage(1000, 1e6, 1.0), ZipfCoverage(1000, 1e6, 0.8));
}

TEST(WarmupModelTest, EdisonTierLandsNearPaperHitRatio) {
  // 11 Edison cache servers at ~50% of 1 GB usable reach the paper's 93%
  // operating point on the no-image catalog with a typical web skew.
  const TableCatalog catalog = TableCatalog::PaperCatalog(0.0);
  CacheTierSpec tier;  // defaults: 11 x 1 GB x 0.5, s = 1.1
  const double hit = EstimateHitRatio(catalog, tier);
  EXPECT_GT(hit, 0.88);
  EXPECT_LT(hit, 0.98);
}

TEST(WarmupModelTest, SmallerTierMeansLowerHitRatio) {
  const TableCatalog catalog = TableCatalog::PaperCatalog(0.0);
  CacheTierSpec full;
  CacheTierSpec half = full;
  half.cache_servers = 3;
  EXPECT_LT(EstimateHitRatio(catalog, half),
            EstimateHitRatio(catalog, full));
  // The paper's 77% and 60% points correspond to under-warmed/smaller
  // effective caches; a few hundred MB of tier lands in that band.
  CacheTierSpec tiny = full;
  tiny.cache_servers = 1;
  tiny.usable_fraction = 0.3;
  const double tiny_hit = EstimateHitRatio(catalog, tiny);
  EXPECT_GT(tiny_hit, 0.4);
  EXPECT_LT(tiny_hit, 0.85);
}

TEST(WarmupModelTest, ImageHeavyMixesAreHarderToCache) {
  CacheTierSpec tier;
  const double plain =
      EstimateHitRatio(TableCatalog::PaperCatalog(0.0), tier);
  const double heavy =
      EstimateHitRatio(TableCatalog::PaperCatalog(0.20), tier);
  EXPECT_LT(heavy, plain);  // 44 KB blobs crowd out the working set
}

TEST(WarmupModelTest, DellTierCachesMoreThanEdisonTier) {
  const TableCatalog catalog = TableCatalog::PaperCatalog(0.10);
  CacheTierSpec edison;  // 11 x 1 GB
  CacheTierSpec dell;
  dell.cache_servers = 1;
  dell.server_memory = GB(16);
  dell.usable_fraction = 0.4;  // paper: 40% memory used on the Dell cache
  EXPECT_GT(EstimateHitRatio(catalog, dell),
            EstimateHitRatio(catalog, edison) - 0.02);
}

TEST(WarmupModelTest, WarmupTimeScalesWithCapacityAndRate) {
  CacheTierSpec tier;
  const Duration slow = WarmupTimeNeeded(tier, MBps(10));
  const Duration fast = WarmupTimeNeeded(tier, MBps(100));
  EXPECT_NEAR(slow / fast, 10.0, 1e-9);
  EXPECT_GT(slow, Minutes(5));  // 5.5 GB at 10 MB/s ~ 9 min
  EXPECT_EQ(WarmupTimeNeeded(tier, 0), 0.0);
}

}  // namespace
}  // namespace wimpy::web
