#include "sim/task.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/fair_share.h"
#include "sim/process.h"
#include "sim/scheduler.h"

namespace wimpy::sim {
namespace {

Task<int> Immediate(int v) { co_return v; }

Task<int> AddAfterDelay(Scheduler& sched, int a, int b) {
  co_await Delay(sched, 1.0);
  co_return a + b;
}

Process Driver(Scheduler& sched, std::vector<int>* out) {
  out->push_back(co_await Immediate(5));
  out->push_back(co_await AddAfterDelay(sched, 2, 3));
  out->push_back(static_cast<int>(sched.now()));
}

TEST(TaskTest, TasksComposeInsideProcesses) {
  Scheduler sched;
  std::vector<int> out;
  Spawn(sched, Driver(sched, &out));
  sched.Run();
  EXPECT_EQ(out, (std::vector<int>{5, 5, 1}));
}

Task<void> VoidStep(Scheduler& sched, double d, int* counter) {
  co_await Delay(sched, d);
  ++*counter;
}

Process VoidDriver(Scheduler& sched, int* counter) {
  co_await VoidStep(sched, 1.0, counter);
  co_await VoidStep(sched, 2.0, counter);
}

TEST(TaskTest, VoidTasksSequence) {
  Scheduler sched;
  int counter = 0;
  Spawn(sched, VoidDriver(sched, &counter));
  sched.Run();
  EXPECT_EQ(counter, 2);
  EXPECT_EQ(sched.now(), 3.0);
}

Task<int> Fib(int n) {
  if (n <= 1) co_return n;
  const int a = co_await Fib(n - 1);
  const int b = co_await Fib(n - 2);
  co_return a + b;
}

Process FibDriver(int n, int* out) { *out = co_await Fib(n); }

TEST(TaskTest, DeepRecursiveChainsViaSymmetricTransfer) {
  Scheduler sched;
  int out = 0;
  Spawn(sched, FibDriver(18, &out));
  sched.Run();
  EXPECT_EQ(out, 2584);
}

TEST(TaskTest, UnawaitedTaskIsFreedSafely) {
  int counter = 0;
  {
    Scheduler sched;
    auto t = VoidStep(sched, 1.0, &counter);
    // dropped without awaiting
  }
  EXPECT_EQ(counter, 0);
}

Task<double> ServeAndReport(FairShareServer& server, double demand,
                            Scheduler& sched) {
  co_await server.Serve(demand);
  co_return sched.now();
}

Process MixedDriver(Scheduler& sched, FairShareServer& server,
                    std::vector<double>* out) {
  out->push_back(co_await ServeAndReport(server, 10.0, sched));
  out->push_back(co_await ServeAndReport(server, 20.0, sched));
}

TEST(TaskTest, TasksInteroperateWithResources) {
  Scheduler sched;
  FairShareServer server(&sched, 10.0);
  std::vector<double> out;
  Spawn(sched, MixedDriver(sched, server, &out));
  sched.Run();
  EXPECT_NEAR(out[0], 1.0, 1e-9);
  EXPECT_NEAR(out[1], 3.0, 1e-9);
}

}  // namespace
}  // namespace wimpy::sim
