// Hierarchical topology (net/topology.h) on the multi-hop fabric: path
// latency composition, oversubscription bandwidth caps at each layer,
// uplink sharing, and the PublishMetrics late-link contract.
#include "net/topology.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/profiles.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "sim/process.h"

namespace wimpy::net {
namespace {

// 4 racks x 2 nodes in 2 pods of Edison-class boxes (100 Mbps NICs).
// Rack oversubscription 4: uplink = 2 * 100 / 4 = 50 Mbps.
// Core oversubscription 4: pod uplink = 2 * 50 / 4 = 25 Mbps.
class TopologyTest : public ::testing::Test {
 protected:
  static HierarchicalTopologyConfig Config() {
    HierarchicalTopologyConfig config;
    config.racks = 4;
    config.racks_per_pod = 2;
    config.nodes_per_rack = 2;
    config.node_bandwidth = Mbps(100);
    config.rack_oversubscription = 4.0;
    config.core_oversubscription = 4.0;
    return config;
  }

  TopologyTest() : fabric_(&sched_), topo_(&fabric_, Config()) {
    for (int r = 0; r < 4; ++r) {
      for (int i = 0; i < 2; ++i) {
        nodes_.push_back(std::make_unique<hw::ServerNode>(
            &sched_, hw::EdisonProfile(), r * 2 + i));
        fabric_.AddNode(nodes_.back().get(), topo_.RackGroup(r));
      }
    }
  }

  sim::Process DoTransfer(int src, int dst, Bytes n, double* done_at) {
    co_await fabric_.Transfer(src, dst, n);
    *done_at = sched_.now();
  }

  sim::Scheduler sched_;
  Fabric fabric_;
  HierarchicalTopology topo_;
  std::vector<std::unique_ptr<hw::ServerNode>> nodes_;
};

TEST_F(TopologyTest, UplinkBandwidthMath) {
  EXPECT_NEAR(topo_.rack_uplink_bandwidth(), Mbps(50), 1);
  EXPECT_NEAR(topo_.pod_uplink_bandwidth(0), Mbps(25), 1);
  EXPECT_EQ(topo_.pods(), 2);
  EXPECT_EQ(topo_.PodOfRack(0), 0);
  EXPECT_EQ(topo_.PodOfRack(3), 1);
}

TEST_F(TopologyTest, PathLatencyComposes) {
  // Edison endpoint latency is 0.65 ms per side.
  const Duration endpoints = 2 * Milliseconds(0.65);
  // Same rack: ToR only, no uplink hops.
  EXPECT_NEAR(fabric_.Latency(0, 1), endpoints, 1e-9);
  // Same pod, different rack: two ToR uplink hops through the agg.
  EXPECT_NEAR(fabric_.Latency(0, 2), endpoints + 2 * Microseconds(5),
              1e-9);
  // Cross pod: two uplink hops plus two core hops.
  EXPECT_NEAR(fabric_.Latency(0, 6),
              endpoints + 2 * Microseconds(5) + 2 * Microseconds(20),
              1e-9);
}

TEST_F(TopologyTest, RackOversubscriptionCapsCrossRackFlow) {
  double done_at = -1;
  // Same pod: min(100 Mbps NIC, 50 Mbps uplink) = 6.25 MB/s.
  sim::Spawn(sched_, DoTransfer(0, 2, MB(6.25), &done_at));
  sched_.Run();
  EXPECT_NEAR(done_at, 1.0, 0.01);
}

TEST_F(TopologyTest, CoreOversubscriptionBitesCrossPod) {
  double done_at = -1;
  // Cross pod: the 25 Mbps pod uplink dominates -> 3.125 MB/s.
  sim::Spawn(sched_, DoTransfer(0, 6, MB(6.25), &done_at));
  sched_.Run();
  EXPECT_NEAR(done_at, 2.0, 0.01);
}

TEST_F(TopologyTest, FlowsShareTheRackUplink) {
  std::vector<double> done(2, -1);
  // Two flows out of rack0 (distinct src/dst NICs) split the 50 Mbps
  // uplink: each gets 25 Mbps.
  sim::Spawn(sched_, DoTransfer(0, 2, MB(6.25), &done[0]));
  sim::Spawn(sched_, DoTransfer(1, 3, MB(6.25), &done[1]));
  sched_.Run();
  EXPECT_NEAR(done[0], 2.0, 0.05);
  EXPECT_NEAR(done[1], 2.0, 0.05);
  // The uplink saw the traffic; the idle rack3 uplink did not.
  EXPECT_GT(fabric_.GroupLinkAverageBusyFraction(topo_.RackGroup(0),
                                                 topo_.AggGroup(0)),
            0.0);
  EXPECT_EQ(fabric_.GroupLinkAverageBusyFraction(topo_.RackGroup(3),
                                                 topo_.AggGroup(1)),
            0.0);
}

TEST_F(TopologyTest, AttachToCoreReachesEveryRack) {
  auto client = std::make_unique<hw::ServerNode>(
      &sched_, hw::DellR620Profile(), 100);
  topo_.AttachToCore("client-room", Gbps(10), Milliseconds(0.02));
  fabric_.AddNode(client.get(), "client-room");
  // Dell 0.12 ms + Edison 0.65 ms endpoints, then access + core + uplink
  // hops.
  EXPECT_NEAR(fabric_.Latency(100, 0),
              Milliseconds(0.12) + Milliseconds(0.65) + Milliseconds(0.02) +
                  Microseconds(20) + Microseconds(5),
              1e-9);
  double done_at = -1;
  // The way in crosses core -> agg (25 Mbps pod uplink) -> rack; the pod
  // uplink is the narrowest segment.
  sim::Spawn(sched_, DoTransfer(100, 0, MB(6.25), &done_at));
  sched_.Run();
  EXPECT_NEAR(done_at, 2.0, 0.01);
}

TEST(TopologyMetricsTest, LinksConfiguredAfterPublishGetGauges) {
  sim::Scheduler sched;
  Fabric fabric(&sched);
  obs::MetricsRegistry registry;
  fabric.SetGroupLink("a", "b", Mbps(100), Microseconds(5));
  fabric.PublishMetrics(&registry, "net");
  EXPECT_EQ(registry.probe_count(), 1u);
  // The late link self-registers at SetGroupLink time...
  fabric.SetGroupLink("a", "c", Mbps(100), Microseconds(5));
  EXPECT_EQ(registry.probe_count(), 2u);
  // ...and reconfiguring an already-published link does not duplicate.
  fabric.SetGroupLink("a", "b", Mbps(200), Microseconds(5));
  EXPECT_EQ(registry.probe_count(), 2u);
}

TEST(TopologyMetricsTest, WholeTreePublishesOneGaugePerLink) {
  sim::Scheduler sched;
  Fabric fabric(&sched);
  HierarchicalTopologyConfig config;
  config.racks = 3;
  config.racks_per_pod = 2;
  config.nodes_per_rack = 4;
  config.node_bandwidth = Mbps(100);
  HierarchicalTopology topo(&fabric, config);
  obs::MetricsRegistry registry;
  fabric.PublishMetrics(&registry, "net");
  // 3 rack uplinks + 2 pod uplinks.
  EXPECT_EQ(registry.probe_count(), 5u);
  topo.AttachToCore("clients", Gbps(10), Milliseconds(0.02));
  EXPECT_EQ(registry.probe_count(), 6u);
}

}  // namespace
}  // namespace wimpy::net
