#include "mapreduce/tera_pipeline.h"

#include <gtest/gtest.h>

namespace wimpy::mapreduce {
namespace {

TEST(TeraPipelineTest, SpecsHaveStageShapes) {
  const auto config = TeraSortClusterConfig(EdisonMrCluster(8));
  const JobSpec gen = TeraGenJob(config);
  EXPECT_EQ(gen.input_files, 0);
  EXPECT_GT(gen.synthetic_map_tasks, 100);
  EXPECT_EQ(gen.reducers, 0);
  const JobSpec validate = TeraValidateJob(config);
  EXPECT_EQ(validate.input_prefix, "terasort-out");
  EXPECT_EQ(validate.input_files, TotalVcores(config));
  EXPECT_EQ(validate.reducers, 1);
}

TEST(TeraPipelineTest, ThreeStagesRunInOrder) {
  // Scaled-down cluster; full 10 GB data (block-granular inputs).
  MrTestbed testbed(TeraSortClusterConfig(EdisonMrCluster(8)));
  const TeraPipelineResult result = RunTeraPipeline(&testbed);
  EXPECT_GT(result.teragen.job.elapsed, 0);
  EXPECT_GT(result.terasort.job.elapsed, 0);
  EXPECT_GT(result.teravalidate.job.elapsed, 0);
  // The sort dominates; validation is a cheap scan.
  EXPECT_GT(result.terasort.job.elapsed,
            result.teravalidate.job.elapsed);
  EXPECT_GT(result.terasort.slave_joules,
            result.teravalidate.slave_joules);
  // Stages ran back to back on one simulated clock.
  EXPECT_GE(result.terasort.job.started,
            result.teragen.job.finished - 1e-9);
  EXPECT_GE(result.teravalidate.job.started,
            result.terasort.job.finished - 1e-9);
}

}  // namespace
}  // namespace wimpy::mapreduce
