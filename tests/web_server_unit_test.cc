// Unit tests for the web-server model itself (below the experiment
// harness): worker-pool overload, accept serialisation, reply-size
// dependent costs, and stats bookkeeping.
#include "web/web_server.h"

#include <gtest/gtest.h>

#include <memory>

#include "hw/profiles.h"
#include "sim/process.h"
#include "web/backend.h"
#include "web/service.h"

namespace wimpy::web {
namespace {

class WebServerUnitTest : public ::testing::Test {
 protected:
  WebServerUnitTest() : fabric_(&sched_) {
    web_node_ = std::make_unique<hw::ServerNode>(
        &sched_, hw::EdisonProfile(), 0);
    cache_node_ = std::make_unique<hw::ServerNode>(
        &sched_, hw::EdisonProfile(), 1);
    db_node_ = std::make_unique<hw::ServerNode>(
        &sched_, hw::DellR620Profile(), 2);
    client_node_ = std::make_unique<hw::ServerNode>(
        &sched_, hw::DellR620Profile(), 3);
    fabric_.AddNode(web_node_.get(), "edison-room");
    fabric_.AddNode(cache_node_.get(), "edison-room");
    fabric_.AddNode(db_node_.get(), "dell-room");
    fabric_.AddNode(client_node_.get(), "client-room");
    fabric_.SetGroupLink("edison-room", "dell-room", Gbps(1),
                         Milliseconds(0.02));
    fabric_.SetGroupLink("client-room", "edison-room", Gbps(1),
                         Milliseconds(0.05));
    cache_ = std::make_unique<CacheServer>(cache_node_.get(), &fabric_,
                                           BackendCosts{});
    db_ = std::make_unique<DatabaseServer>(db_node_.get(), &fabric_,
                                           BackendCosts{}, 7);
  }

  std::unique_ptr<WebServer> MakeServer(WebServerConfig config) {
    return std::make_unique<WebServer>(
        web_node_.get(), &fabric_, std::vector<CacheServer*>{cache_.get()},
        std::vector<DatabaseServer*>{db_.get()}, config, 11);
  }

  static RequestSpec CacheHit(Bytes reply) {
    return RequestSpec{false, reply, true};
  }
  static RequestSpec CacheMiss(Bytes reply) {
    return RequestSpec{false, reply, false};
  }

  sim::Scheduler sched_;
  net::Fabric fabric_;
  std::unique_ptr<hw::ServerNode> web_node_, cache_node_, db_node_,
      client_node_;
  std::unique_ptr<CacheServer> cache_;
  std::unique_ptr<DatabaseServer> db_;
};

sim::Process CallOnce(WebServer& web, RequestSpec spec, CallResult* out) {
  *out = co_await web.ServeCall(3, spec);
}

TEST_F(WebServerUnitTest, CacheHitAvoidsDatabase) {
  auto web = MakeServer(EdisonWebConfig());
  CallResult result;
  sim::Spawn(sched_, CallOnce(*web, CacheHit(KB(1.5)), &result));
  sched_.Run();
  EXPECT_TRUE(result.ok);
  EXPECT_GT(result.cache_delay, 0);
  EXPECT_EQ(result.db_delay, 0);
  EXPECT_EQ(cache_->hits_served(), 1);
  EXPECT_EQ(db_->queries_served(), 0);
  EXPECT_EQ(web->calls_ok(), 1);
}

TEST_F(WebServerUnitTest, CacheMissHitsDatabase) {
  auto web = MakeServer(EdisonWebConfig());
  CallResult result;
  sim::Spawn(sched_, CallOnce(*web, CacheMiss(KB(1.5)), &result));
  sched_.Run();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.cache_delay, 0);
  EXPECT_GT(result.db_delay, Milliseconds(0.5));
  EXPECT_EQ(db_->queries_served(), 1);
}

TEST_F(WebServerUnitTest, BiggerRepliesTakeLonger) {
  auto web = MakeServer(EdisonWebConfig());
  CallResult small, large;
  sim::Spawn(sched_, CallOnce(*web, CacheHit(KB(1.5)), &small));
  sched_.Run();
  sim::Spawn(sched_, CallOnce(*web, CacheHit(KB(44)), &large));
  sched_.Run();
  EXPECT_GT(large.total, small.total * 1.5);
}

TEST_F(WebServerUnitTest, QueueOverflowReturns500) {
  WebServerConfig config = EdisonWebConfig();
  config.php_workers = 1;
  config.queue_factor = 2;  // queue limit = 2
  auto web = MakeServer(config);
  std::vector<CallResult> results(12);
  for (auto& r : results) {
    sim::Spawn(sched_, CallOnce(*web, CacheHit(KB(1.5)), &r));
  }
  sched_.Run();
  int ok = 0, errors = 0;
  for (const auto& r : results) {
    (r.ok ? ok : errors)++;
  }
  EXPECT_GT(errors, 0);
  EXPECT_GT(ok, 0);
  EXPECT_EQ(web->errors_500(), errors);
  EXPECT_EQ(web->calls_ok(), ok);
  // 500s come back much faster than served calls under this pile-up.
  Duration err_delay = 1e9, ok_delay = 0;
  for (const auto& r : results) {
    if (r.ok) {
      ok_delay = std::max(ok_delay, r.total);
    } else {
      err_delay = std::min(err_delay, r.total);
    }
  }
  EXPECT_LT(err_delay, ok_delay);
}

TEST_F(WebServerUnitTest, StatsResetClearsWindows) {
  auto web = MakeServer(EdisonWebConfig());
  CallResult result;
  sim::Spawn(sched_, CallOnce(*web, CacheHit(KB(1.5)), &result));
  sched_.Run();
  EXPECT_EQ(web->total_delay_stats().count(), 1u);
  web->ResetStats();
  EXPECT_EQ(web->calls_ok(), 0);
  EXPECT_EQ(web->total_delay_stats().count(), 0u);
  EXPECT_EQ(web->cache_delay_stats().count(), 0u);
}

sim::Process AcceptOnce(WebServer& web, sim::Scheduler& sched,
                        double* done_at) {
  web.tcp_host().TryEnterBacklog();
  co_await web.AcceptWork();
  *done_at = sched.now();
}

TEST_F(WebServerUnitTest, AcceptLoopSerialises) {
  auto web = MakeServer(EdisonWebConfig());
  std::vector<double> done(4, -1);
  for (auto& d : done) {
    sim::Spawn(sched_, AcceptOnce(*web, sched_, &d));
  }
  sched_.Run();
  std::sort(done.begin(), done.end());
  // Each accept adds roughly the same serial CPU slice.
  const double step0 = done[1] - done[0];
  const double step1 = done[2] - done[1];
  EXPECT_GT(step0, 0);
  EXPECT_NEAR(step1, step0, step0 * 0.5);
  EXPECT_EQ(web->tcp_host().backlog_depth(), 0);  // all released
}

TEST_F(WebServerUnitTest, FailedFlagIsSticky) {
  auto web = MakeServer(EdisonWebConfig());
  EXPECT_FALSE(web->failed());
  web->set_failed(true);
  EXPECT_TRUE(web->failed());
  web->set_failed(false);
  EXPECT_FALSE(web->failed());
}

}  // namespace
}  // namespace wimpy::web
