// Allocation-regression guard for the steady-state request path
// (docs/scale.md): after warmup, serving one more web request or KV query
// must cost zero heap blocks — coroutine frames come from the frame pool,
// connection/call state from pooled slots, and routing from id-indexed
// tables. A change that reintroduces per-request allocation (a string
// key, a per-transfer spawned process, an unpooled frame) shows up here
// as a nonzero per-request allocation rate.
//
// Method: the test binary replaces global operator new/delete with
// counting versions, then measures the SAME experiment twice with
// different window lengths. Testbed construction and per-window
// bookkeeping cancel in the difference, so
//   (allocs_long - allocs_short) / (requests_long - requests_short)
// is the marginal heap cost per request. Amortized container doubling
// and histogram growth contribute O(log requests), absorbed by the
// epsilon.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "hw/profiles.h"
#include "kv/experiment.h"
#include "sim/frame_pool.h"
#include "web/service.h"
#include "web/workload.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void CountAlloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

// Global replacements (C++ [replacement.functions]): every heap block the
// process allocates while g_counting is set is counted, including the
// fall-through path of the frame pool.
void* operator new(std::size_t size) {
  CountAlloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  CountAlloc();
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#if defined(WIMPY_FRAME_POOL_DISABLED)

// Under ASan the frame pool is compiled out on purpose (every coroutine
// frame must go through the real allocator to be poisoned), so the
// zero-allocs-per-request contract does not hold by design.
TEST(ModelAllocTest, SkippedWhenFramePoolDisabled) {
  GTEST_SKIP() << "frame pool disabled (sanitizer build)";
}

#else

namespace wimpy {
namespace {

// Runs `body` with counting enabled and returns the number of heap
// blocks allocated during it.
template <typename Fn>
std::uint64_t CountedAllocs(Fn&& body) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  body();
  g_counting.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

constexpr double kMaxAllocsPerRequest = 0.02;

TEST(ModelAllocTest, WebServePathAllocatesNothingPerRequest) {
  web::WebTestbedConfig cfg = web::EdisonWebTestbed(3, 2);
  cfg.seed = 4242;
  web::WebExperiment exp(std::move(cfg));
  const double concurrency = 64;
  const int calls = web::WebExperiment::TunedCallsPerConnection(concurrency);

  // Warmup replication: fills the frame pool and the connection/call
  // slot pools to their steady-state high-water marks.
  exp.MeasureClosedLoop(web::LightMix(), concurrency, calls, Seconds(1),
                        Seconds(4));

  double short_reqs = 0, long_reqs = 0;
  const std::uint64_t short_allocs = CountedAllocs([&] {
    const web::LevelReport r = exp.MeasureClosedLoop(
        web::LightMix(), concurrency, calls, Seconds(1), Seconds(4));
    short_reqs = r.achieved_rps * 4;
  });
  const std::uint64_t long_allocs = CountedAllocs([&] {
    const web::LevelReport r = exp.MeasureClosedLoop(
        web::LightMix(), concurrency, calls, Seconds(1), Seconds(12));
    long_reqs = r.achieved_rps * 12;
  });

  const double extra_reqs = long_reqs - short_reqs;
  ASSERT_GT(extra_reqs, 1000) << "windows too small to resolve the rate";
  const double per_request =
      (static_cast<double>(long_allocs) - static_cast<double>(short_allocs)) /
      extra_reqs;
  RecordProperty("short_allocs", static_cast<int>(short_allocs));
  RecordProperty("long_allocs", static_cast<int>(long_allocs));
  EXPECT_LT(per_request, kMaxAllocsPerRequest)
      << "web serve path allocates on the heap per request: short window "
      << short_allocs << " blocks / " << short_reqs << " reqs, long window "
      << long_allocs << " blocks / " << long_reqs << " reqs";
}

TEST(ModelAllocTest, KvGetPutPathAllocatesNothingPerQuery) {
  kv::KvExperimentConfig config;
  config.node_profile = hw::EdisonProfile();
  config.node_count = 8;
  config.seed = 4242;
  // Default mix is 90% GET / 10% PUT, covering both query paths.
  kv::KvExperiment exp(std::move(config));

  exp.Measure(500, Seconds(4));  // warmup: fill the pools

  double short_queries = 0, long_queries = 0;
  const std::uint64_t short_allocs = CountedAllocs([&] {
    const kv::KvReport r = exp.Measure(500, Seconds(4));
    short_queries = r.achieved_qps * 4;
  });
  const std::uint64_t long_allocs = CountedAllocs([&] {
    const kv::KvReport r = exp.Measure(500, Seconds(12));
    long_queries = r.achieved_qps * 12;
  });

  const double extra_queries = long_queries - short_queries;
  ASSERT_GT(extra_queries, 1000) << "windows too small to resolve the rate";
  const double per_query =
      (static_cast<double>(long_allocs) - static_cast<double>(short_allocs)) /
      extra_queries;
  RecordProperty("short_allocs", static_cast<int>(short_allocs));
  RecordProperty("long_allocs", static_cast<int>(long_allocs));
  EXPECT_LT(per_query, kMaxAllocsPerRequest)
      << "KV get/put path allocates on the heap per query: short window "
      << short_allocs << " blocks / " << short_queries << " queries, long "
      << long_allocs << " blocks / " << long_queries << " queries";
}

}  // namespace
}  // namespace wimpy

#endif  // WIMPY_FRAME_POOL_DISABLED
