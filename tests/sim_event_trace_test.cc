// Golden event-trace tests for the discrete-event engine, recorded
// through the obs::Tracer observability subsystem (docs/observability.md).
//
// The engine guarantees deterministic execution: events run in (time,
// sequence) order, FIFO at equal timestamps, with one sequence number
// consumed per ScheduleAt/ScheduleAfter/ResumeLater call. These tests pin
// that contract down two ways:
//
//  1. A differential test drives the production Scheduler and an embedded
//     reference engine (the original priority_queue + tombstone-set
//     implementation this engine replaced) through an identical
//     deterministic op mix — schedules, nested schedules, coroutine
//     wake-ups, and cancels (including cancel of the earliest pending
//     event and double-cancel) — and requires bit-identical traces. The
//     tracer's explicit-time InstantAt form lets the reference engine's
//     clock feed the same record path the real engine uses.
//
//  2. A golden full-stack workload (web-style fair-share + semaphore
//     request flow, MapReduce-style wait-queue workers, and a cancel/re-arm
//     churn loop) whose complete (time, label) trace hash was captured from
//     the seed engine. Any reordering, dropped event, or clock drift in a
//     future engine change breaks the hash. A second tracer rides the
//     scheduler's engine hook and must see exactly one kEngine record per
//     executed event.
#include <gtest/gtest.h>

#include <cmath>
#include <coroutine>
#include <cstdint>
#include <cstring>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/tracer.h"
#include "sim/fair_share.h"
#include "sim/process.h"
#include "sim/scheduler.h"
#include "sim/semaphore.h"
#include "sim/wait_queue.h"

namespace wimpy::sim {
namespace {

using obs::Category;
using obs::TraceEvent;
using obs::Tracer;

void Log(Tracer& trace, SimTime t, std::int64_t label) {
  trace.InstantAt(t, "evt", Category::kApp, 0, label);
}

// FNV-1a over the raw (time, label) stream — the same digest the seed
// test computed over its local trace struct, now over tracer events.
std::uint64_t TraceHash(const Tracer& trace) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const TraceEvent& e : trace.events()) {
    std::uint64_t bits;
    std::memcpy(&bits, &e.time, sizeof(bits));
    mix(bits);
    mix(static_cast<std::uint64_t>(e.arg));
  }
  return h;
}

// Reference engine: the seed implementation (binary heap of (time, id)
// ordered std::function events, cancellation via a tombstone set), with
// exact pending accounting. One id per schedule call, ResumeLater modelled
// as a schedule at the current time — the ordering contract the optimized
// engine must reproduce.
class ReferenceScheduler {
 public:
  SimTime now() const { return now_; }

  std::uint64_t ScheduleAt(SimTime t, std::function<void()> fn) {
    if (t < now_) t = now_;
    const std::uint64_t id = next_id_++;
    queue_.push(Event{t, id, std::move(fn)});
    live_.insert(id);
    return id;
  }

  std::uint64_t ScheduleAfter(Duration delay, std::function<void()> fn) {
    if (delay < 0) delay = 0;
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  bool Cancel(std::uint64_t id) { return live_.erase(id) > 0; }

  void ResumeLater(std::function<void()> fn) {
    ScheduleAt(now_, std::move(fn));
  }

  std::size_t Run(SimTime until =
                      std::numeric_limits<SimTime>::infinity()) {
    std::size_t executed = 0;
    if (until < now_) return 0;
    for (;;) {
      while (!queue_.empty() && live_.count(queue_.top().id) == 0) {
        queue_.pop();  // tombstone
      }
      if (queue_.empty()) {
        if (until > now_ && std::isfinite(until)) now_ = until;
        break;
      }
      if (queue_.top().time > until) {
        if (until > now_) now_ = until;
        break;
      }
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      live_.erase(ev.id);
      now_ = ev.time;
      ++executed_;
      ++executed;
      ev.fn();
    }
    return executed;
  }

  std::size_t pending_events() const { return live_.size(); }
  std::size_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<std::uint64_t> live_;
};

// Minimal self-destroying coroutine used to exercise ResumeLater: resuming
// the handle logs once and the frame frees itself.
struct FireOnce {
  struct promise_type {
    FireOnce get_return_object() {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::abort(); }
  };
  std::coroutine_handle<promise_type> handle;
};

FireOnce LogOnResume(Tracer& trace, Scheduler& sched, std::int64_t label) {
  Log(trace, sched.now(), label);
  co_return;
}

// Adapters so one op script can drive both engines. `Resume` posts a
// same-time coroutine wake-up on the real engine and the equivalent
// same-time callback on the reference.
struct RealEngine {
  Scheduler sched;
  Tracer trace;

  std::uint64_t Schedule(SimTime t, std::int64_t label,
                         std::function<void()> body) {
    return sched.ScheduleAt(t, [this, label, body = std::move(body)] {
      Log(trace, sched.now(), label);
      if (body) body();
    });
  }
  bool Cancel(std::uint64_t id) { return sched.Cancel(id); }
  void Resume(std::int64_t label) {
    sched.ResumeLater(LogOnResume(trace, sched, label).handle);
  }
  SimTime Now() const { return sched.now(); }
  void Run(SimTime until) { sched.Run(until); }
  void RunAll() { sched.Run(); }
};

struct RefEngine {
  ReferenceScheduler sched;
  Tracer trace;

  std::uint64_t Schedule(SimTime t, std::int64_t label,
                         std::function<void()> body) {
    return sched.ScheduleAt(t, [this, label, body = std::move(body)] {
      Log(trace, sched.now(), label);
      if (body) body();
    });
  }
  bool Cancel(std::uint64_t id) { return sched.Cancel(id); }
  void Resume(std::int64_t label) {
    sched.ResumeLater(
        [this, label] { Log(trace, sched.now(), label); });
  }
  SimTime Now() const { return sched.now(); }
  void Run(SimTime until) { sched.Run(until); }
  void RunAll() { sched.Run(); }
};

// Deterministic op mix. All decisions derive from a counter-seeded LCG so
// the two engines see byte-identical scripts; `cancel_log` records Cancel
// return values for cross-engine comparison.
template <typename Engine>
void RunOpMix(Engine& eng, std::vector<int>& cancel_log) {
  std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(lcg >> 33);
  };

  // Pending ids with their scheduled times, tracked by the driver so both
  // engines cancel the "same" event (chosen by index, not by id value).
  // `live` flips to false when the event fires or is cancelled, keeping the
  // script on the well-defined cancel-a-pending-event path.
  struct Armed {
    std::uint64_t id;
    SimTime time;
    bool live;
  };
  auto armed = std::make_shared<std::vector<Armed>>();

  std::function<void(int, int)> plant =
      [&eng, &next, armed, &plant, &cancel_log](int label, int depth) {
        const SimTime t = eng.Now() + 0.125 * (1 + next() % 40);
        const std::uint32_t action = next() % 10;
        std::function<void()> action_body;
        if (depth < 3 && action < 4) {
          action_body = [&plant, label, depth] {
            plant(label + 1000, depth + 1);
          };
        } else if (action < 6) {
          action_body = [&eng, label] { eng.Resume(50000 + label); };
        } else if (action >= 8 && !armed->empty()) {
          // Cancel a deterministically-chosen earlier event from inside a
          // running event; skipped (but logged) if it already fired.
          const std::size_t pick = next() % armed->size();
          action_body = [&eng, armed, pick, &cancel_log] {
            auto& slot = (*armed)[pick];
            if (slot.live) {
              cancel_log.push_back(eng.Cancel(slot.id) ? 1 : 0);
              slot.live = false;
            } else {
              cancel_log.push_back(2);
            }
          };
        }
        const std::size_t idx = armed->size();
        const std::uint64_t id = eng.Schedule(
            t, label, [armed, idx, action_body = std::move(action_body)] {
              (*armed)[idx].live = false;  // fired
              if (action_body) action_body();
            });
        armed->push_back({id, t, true});
      };

  for (int i = 0; i < 64; ++i) plant(i, 0);

  // Cancel the earliest-time pending event (the heap top) and double-cancel
  // it, plus a scattering of mid-heap cancels, before running.
  std::size_t top = 0;
  for (std::size_t i = 1; i < armed->size(); ++i) {
    if ((*armed)[i].time < (*armed)[top].time) top = i;
  }
  cancel_log.push_back(eng.Cancel((*armed)[top].id) ? 1 : 0);
  cancel_log.push_back(eng.Cancel((*armed)[top].id) ? 1 : 0);  // double
  (*armed)[top].live = false;
  for (std::size_t i = 0; i < armed->size(); i += 7) {
    if (!(*armed)[i].live) continue;
    cancel_log.push_back(eng.Cancel((*armed)[i].id) ? 1 : 0);
    (*armed)[i].live = false;
  }

  // Run in bounded windows (exercising the drained-queue clock advance),
  // then to completion.
  eng.Run(1.0);
  for (int i = 0; i < 8; ++i) eng.Resume(60000 + i);
  eng.Run(3.5);
  eng.RunAll();
}

TEST(EventTraceTest, MatchesReferenceEngineOnMixedOps) {
  RealEngine real;
  RefEngine ref;
  std::vector<int> real_cancels;
  std::vector<int> ref_cancels;
  RunOpMix(real, real_cancels);
  RunOpMix(ref, ref_cancels);

  EXPECT_EQ(real_cancels, ref_cancels);
  ASSERT_EQ(real.trace.size(), ref.trace.size());
  for (std::size_t i = 0; i < real.trace.size(); ++i) {
    const TraceEvent& a = real.trace.events()[i];
    const TraceEvent& b = ref.trace.events()[i];
    EXPECT_EQ(a.time, b.time) << "entry " << i;
    EXPECT_EQ(a.arg, b.arg) << "entry " << i;
  }
  EXPECT_EQ(TraceHash(real.trace), TraceHash(ref.trace));
  EXPECT_EQ(real.sched.executed_events(), ref.sched.executed_events());
  EXPECT_EQ(real.sched.pending_events(), 0u);
  EXPECT_EQ(ref.sched.pending_events(), 0u);
  EXPECT_EQ(real.Now(), ref.Now());
}

// Differential tier-crossing reschedules: the real engine's in-place
// RescheduleAfter (across wheel->heap, heap->wheel, and same-bucket
// moves) must produce the byte-identical event stream of the reference
// engine's Cancel + ScheduleAfter. Delays straddle the ~65 ms wheel
// horizon so every tier transition appears in one script.
template <typename Engine, typename Resched>
void RunTierCrossMix(Engine& eng, Resched resched) {
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 24; ++i) {
    // Even events start short-delay (wheel tier), odd start far-future
    // (overflow heap).
    const SimTime t = (i % 2 == 0) ? 0.0005 * (1 + i % 8)
                                   : 0.5 + 0.125 * (i % 6);
    ids.push_back(eng.Schedule(t, i, nullptr));
  }
  for (int i = 0; i < 24; i += 3) {
    // Even (wheel-resident) events move past the horizon; odd
    // (heap-resident) events move inside it.
    const double delay =
        (i % 2 == 0) ? 1.0 + 0.25 * i : 0.001 * (1 + i % 4);
    ids[i] = resched(eng, ids[i], i, delay);
  }
  // Same-tick re-aim: nudge an event by less than one wheel tick so the
  // old and new chain share a bucket.
  ids[2] = resched(eng, ids[2], 2, 0.0015 + 4e-10);
  // A window run between reschedule volleys, then a second volley from a
  // nonzero clock, then drain.
  eng.Run(0.01);
  for (int i = 1; i < 24; i += 4) {
    const double delay = (i % 3 == 0) ? 2.0 : 0.002 * (1 + i % 3);
    const std::uint64_t moved = resched(eng, ids[i], i, delay);
    if (moved != 0) ids[i] = moved;  // already fired -> no-op, like ref
  }
  eng.RunAll();
}

TEST(EventTraceTest, RescheduleAcrossTiersMatchesReference) {
  RealEngine real;
  RefEngine ref;
  RunTierCrossMix(real, [](RealEngine& e, std::uint64_t id, int /*label*/,
                           double delay) {
    // In place: the closure (and its label) travels with the event.
    return e.sched.RescheduleAfter(id, delay);
  });
  RunTierCrossMix(ref, [](RefEngine& e, std::uint64_t id, int label,
                          double delay) -> std::uint64_t {
    // Reference semantics: cancel + schedule a fresh event, one sequence
    // number either way.
    if (!e.Cancel(id)) return 0;
    return e.Schedule(e.Now() + delay, label, nullptr);
  });
  ASSERT_EQ(real.trace.size(), ref.trace.size());
  for (std::size_t i = 0; i < real.trace.size(); ++i) {
    const TraceEvent& a = real.trace.events()[i];
    const TraceEvent& b = ref.trace.events()[i];
    EXPECT_EQ(a.time, b.time) << "entry " << i;
    EXPECT_EQ(a.arg, b.arg) << "entry " << i;
  }
  EXPECT_EQ(TraceHash(real.trace), TraceHash(ref.trace));
  EXPECT_EQ(real.Now(), ref.Now());
  EXPECT_EQ(real.sched.pending_events(), 0u);
}

// ---------------------------------------------------------------------------
// Golden full-stack workload: web + MapReduce + cancel churn.

Process WebClient(Scheduler& sched, FairShareServer& cpu,
                  FairShareServer& nic, Semaphore& threads, Tracer& trace,
                  int id) {
  for (int r = 0; r < 15; ++r) {
    co_await Delay(sched, 0.013 * ((id * 7 + r * 3) % 11));
    SemaphoreGuard guard(threads, 1);
    co_await guard.Acquired();
    co_await cpu.Serve(1.0 + (id + r) % 5);
    co_await nic.Serve(0.5 + (r % 3));
    guard.Release();
    Log(trace, sched.now(), 100000 + id * 100 + r);
  }
}

Process MrWorker(Scheduler& sched, WaitQueue<int>& tasks,
                 FairShareServer& cpu, FairShareServer& disk, Tracer& trace,
                 int id) {
  for (;;) {
    const int task = co_await tasks.Get();
    if (task < 0) {
      Log(trace, sched.now(), 300000 + id);
      co_return;
    }
    co_await cpu.Serve(2.0 + task % 7);
    co_await disk.Serve(1.0 + task % 4);
    Log(trace, sched.now(), 200000 + task);
  }
}

Process MrDriver(Scheduler& sched, WaitQueue<int>& tasks, int n_tasks,
                 int n_workers) {
  for (int t = 0; t < n_tasks; ++t) {
    co_await Delay(sched, 0.021 * (t % 13));
    tasks.Push(t);
  }
  for (int w = 0; w < n_workers; ++w) tasks.Push(-1);
}

// Arm/cancel churn mimicking FairShareServer::Reschedule: a timeout is
// armed 1.7 s out and normally cancelled 0.3 s later; every fifth round the
// next tick is delayed past the timeout so it actually fires.
struct CancelChurn {
  Scheduler* sched;
  Tracer* trace;
  int remaining;
  int i = 0;
  EventId armed = 0;

  void Tick() {
    if (armed != 0) {
      const bool ok = sched->Cancel(armed);
      Log(*trace, sched->now(), 400000 + (ok ? 1 : 0));
      armed = 0;
    }
    if (remaining-- <= 0) return;
    const int round = i++;
    armed = sched->ScheduleAt(sched->now() + 1.7, [this, round] {
      Log(*trace, sched->now(), 450000 + round);
      armed = 0;
    });
    const Duration gap = (round % 5 == 4) ? 2.0 : 0.3;
    sched->ScheduleAfter(gap, [this] { Tick(); });
  }
};

TEST(EventTraceTest, GoldenMixedWorkloadTrace) {
  Scheduler sched;
  Tracer trace;
  // A second tracer rides the engine hook: one kEngine instant per
  // executed event, without disturbing the app-level golden stream.
  Tracer engine_trace;
  engine_trace.AttachEngineHook(&sched);
  FairShareServer cpu(&sched, 12.0, 4.0, "cpu");
  FairShareServer nic(&sched, 8.0, 8.0, "nic");
  FairShareServer disk(&sched, 6.0, 6.0, "disk");
  Semaphore threads(&sched, 4);
  WaitQueue<int> tasks(&sched);

  std::vector<ProcessRef> refs;
  for (int c = 0; c < 6; ++c) {
    refs.push_back(
        Spawn(sched, WebClient(sched, cpu, nic, threads, trace, c)));
  }
  for (int w = 0; w < 3; ++w) {
    refs.push_back(
        Spawn(sched, MrWorker(sched, tasks, cpu, disk, trace, w)));
  }
  refs.push_back(Spawn(sched, MrDriver(sched, tasks, 40, 3)));

  CancelChurn churn{&sched, &trace, 20};
  sched.ScheduleAt(0.05, [&churn] { churn.Tick(); });

  sched.Run();

  for (const auto& ref : refs) EXPECT_TRUE(ref.done());
  EXPECT_EQ(sched.pending_events(), 0u);

  // Golden values captured from the seed engine (priority_queue +
  // tombstone set). The optimized engine must reproduce the identical
  // (time, sequence) execution order.
  EXPECT_EQ(trace.size(), 153u);
  EXPECT_EQ(TraceHash(trace), 7137018536558014104ull) << "trace hash";
  EXPECT_EQ(sched.executed_events(), 770u) << "executed";
  EXPECT_EQ(sched.now(), 0x1.408dc4a20e82ep+5) << "final time";

  // The engine hook saw every executed event, in execution order.
  ASSERT_EQ(engine_trace.size(), sched.executed_events());
  SimTime prev_time = 0;
  for (const TraceEvent& e : engine_trace.events()) {
    EXPECT_EQ(e.category, Category::kEngine);
    EXPECT_GE(e.time, prev_time);
    prev_time = e.time;
  }
}

}  // namespace
}  // namespace wimpy::sim
