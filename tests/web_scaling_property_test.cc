// Parameterised scaling properties of the web tier — the paper's central
// "linear scale-up" claim (§5.1.2 observation 1/4), checked as invariants
// across the Table 6 ladder.
#include <gtest/gtest.h>

#include "web/service.h"

namespace wimpy::web {
namespace {

struct ScaleCase {
  int web_servers;
  int cache_servers;
};

class WebScalingProperty : public ::testing::TestWithParam<ScaleCase> {};

// Offered load proportional to cluster size; all sizes should serve it
// with low errors (the "comfortable" regime).
TEST_P(WebScalingProperty, ProportionalLoadIsServedCleanly) {
  const ScaleCase scale = GetParam();
  WebExperiment exp(EdisonWebTestbed(scale.web_servers,
                                     scale.cache_servers));
  const double conc = 16.0 * scale.web_servers;
  const LevelReport r =
      exp.MeasureClosedLoop(LightMix(), conc, 8, Seconds(2), Seconds(8));
  EXPECT_NEAR(r.achieved_rps, conc * 8, conc * 8 * 0.2);
  EXPECT_LT(r.error_rate, 0.02);
  // Per-server throughput is scale-invariant in this regime.
  const double per_server = r.achieved_rps / scale.web_servers;
  EXPECT_NEAR(per_server, 128, 40);
}

// Saturation capacity grows with the ladder.
TEST_P(WebScalingProperty, CapacityScalesWithWebServers) {
  const ScaleCase scale = GetParam();
  if (scale.web_servers < 6) return;  // compare against the half size
  auto peak = [](int web, int cache) {
    WebExperiment exp(EdisonWebTestbed(web, cache));
    const double conc = 40.0 * web;  // deep saturation
    const LevelReport r =
        exp.MeasureClosedLoop(LightMix(), conc, 8, Seconds(2), Seconds(8));
    return r.achieved_rps;
  };
  const double full = peak(scale.web_servers, scale.cache_servers);
  const double half =
      peak(scale.web_servers / 2, std::max(2, scale.cache_servers / 2));
  EXPECT_GT(full, 1.6 * half);
  EXPECT_LT(full, 2.6 * half);
}

INSTANTIATE_TEST_SUITE_P(
    Table6Ladder, WebScalingProperty,
    ::testing::Values(ScaleCase{3, 2}, ScaleCase{6, 3}, ScaleCase{12, 6},
                      ScaleCase{24, 11}),
    [](const ::testing::TestParamInfo<ScaleCase>& info) {
      return "web" + std::to_string(info.param.web_servers);
    });

}  // namespace
}  // namespace wimpy::web
