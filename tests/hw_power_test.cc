#include "hw/power.h"

#include <gtest/gtest.h>

#include "hw/profiles.h"
#include "hw/server_node.h"
#include "sim/process.h"
#include "sim/scheduler.h"

namespace wimpy::hw {
namespace {

TEST(PowerTest, IdleNodeDrawsIdlePower) {
  sim::Scheduler sched;
  ServerNode node(&sched, EdisonProfile(), 0);
  sched.ScheduleAt(100.0, [] {});
  sched.Run();
  EXPECT_DOUBLE_EQ(node.power().current_watts(), 1.40);
  EXPECT_NEAR(node.power().CumulativeJoules(), 1.40 * 100.0, 1e-9);
}

sim::Process BusyLoop(ServerNode& node, double seconds) {
  // Saturate both cores for `seconds` of virtual time.
  const double minstr = node.cpu().total_dmips() * seconds;
  auto one = [](ServerNode& n, double w) -> sim::Process {
    co_await n.Compute(w);
  };
  auto a = sim::Spawn(node.scheduler(), one(node, minstr / 2));
  auto b = sim::Spawn(node.scheduler(), one(node, minstr / 2));
  co_await a.Join();
  co_await b.Join();
}

TEST(PowerTest, CpuSaturationRaisesPowerTowardBusy) {
  sim::Scheduler sched;
  ServerNode node(&sched, EdisonProfile(), 0);
  sim::Spawn(sched, BusyLoop(node, 10.0));
  sched.Run();
  const double runtime = sched.now();
  EXPECT_NEAR(runtime, 10.0, 1e-6);
  // CPU fully busy, other components idle: mix = cpu_weight.
  const auto& p = node.profile().power;
  const Joules expected =
      (p.idle + (p.busy - p.idle) * p.cpu_weight) * runtime;
  EXPECT_NEAR(node.power().CumulativeJoules(), expected, 1e-6);
  // After the job, power returns to idle.
  EXPECT_DOUBLE_EQ(node.power().current_watts(), p.idle);
}

TEST(PowerTest, EnergyNeverExceedsBusyEnvelope) {
  sim::Scheduler sched;
  ServerNode node(&sched, DellR620Profile(), 0);
  sim::Spawn(sched, BusyLoop(node, 5.0));
  sched.Run();
  const Joules j = node.power().CumulativeJoules();
  EXPECT_GT(j, node.profile().power.idle * sched.now() - 1e-9);
  EXPECT_LT(j, node.profile().power.busy * sched.now() + 1e-9);
}

TEST(PowerTest, AverageWattsBetweenIdleAndBusy) {
  sim::Scheduler sched;
  ServerNode node(&sched, EdisonProfile(), 0);
  sim::Spawn(sched, BusyLoop(node, 10.0));
  sched.ScheduleAt(20.0, [] {});  // 10 s busy + 10 s idle
  sched.Run();
  const Watts avg = node.power().AverageWatts();
  EXPECT_GT(avg, node.profile().power.idle);
  EXPECT_LT(avg, node.profile().power.busy);
}

TEST(PowerTest, MultipleComponentsStackUpToCap) {
  sim::Scheduler sched;
  ServerNode node(&sched, EdisonProfile(), 0);
  // Drive CPU, disk and both NIC directions simultaneously.
  auto drive = [&]() -> sim::Process {
    // One task per core so the CPU is fully busy, not half busy.
    auto cpu = [](ServerNode& n) -> sim::Process {
      co_await n.Compute(n.cpu().total_dmips() * 5.0 / 2.0);
    };
    auto disk = [](ServerNode& n) -> sim::Process {
      co_await n.storage().Read(
          static_cast<Bytes>(n.storage().spec().read_direct * 5.0), false);
    };
    auto net = [](ServerNode& n) -> sim::Process {
      co_await n.nic().tx().Serve(n.nic().bandwidth() * 5.0);
    };
    sim::Spawn(node.scheduler(), cpu(node));
    sim::Spawn(node.scheduler(), cpu(node));
    sim::Spawn(node.scheduler(), disk(node));
    sim::Spawn(node.scheduler(), net(node));
    co_return;
  };
  sim::Spawn(sched, drive());
  sched.Run(2.5);  // mid-flight
  const auto& p = node.profile().power;
  const double expected_mix =
      p.cpu_weight * 1.0 + p.storage_weight * 1.0 + p.nic_weight * 1.0;
  EXPECT_NEAR(node.power().current_watts(),
              p.idle + (p.busy - p.idle) * expected_mix, 1e-9);
  sched.Run();
}

TEST(ServerNodeTest, NamesAndIds) {
  sim::Scheduler sched;
  ServerNode node(&sched, EdisonProfile(), 7);
  EXPECT_EQ(node.id(), 7);
  EXPECT_EQ(node.name(), "edison-7");
  EXPECT_EQ(node.cpu().vcores(), 2);
}

}  // namespace
}  // namespace wimpy::hw
