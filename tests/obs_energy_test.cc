// Per-span energy attribution (obs/energy.h) and the trace-derivation
// goldens the tentpole promises: the ledger conserves the node integral
// exactly (rows + unattributed == total), concurrent residents split an
// interval's joules equally, Table 7's delay decomposition is
// re-derivable from the causal trace alone, and the KV bench's
// queries-per-joule falls out of the trace + ledger.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "hw/profiles.h"
#include "hw/server_node.h"
#include "kv/experiment.h"
#include "obs/critical_path.h"
#include "obs/energy.h"
#include "obs/tracer.h"
#include "sim/process.h"
#include "sim/scheduler.h"
#include "web/service.h"
#include "web/workload.h"

namespace wimpy::obs {
namespace {

TraceHandle RootHandle(Tracer& tracer, sim::Scheduler& sched) {
  TraceHandle h;
  h.tracer = &tracer;
  h.sched = &sched;
  h.track = 0;
  h.ctx.trace_id = tracer.NewTraceId();
  return h;
}

sim::Process SpannedCompute(hw::ServerNode& node, Tracer& tracer,
                            EnergyAttributor& energy) {
  sim::Scheduler& sched = node.scheduler();
  for (int i = 0; i < 3; ++i) {
    {
      CausalSpan span(RootHandle(tracer, sched), "work", Category::kApp, i);
      ScopedResidency res(&energy, node.id(), span.handle(), "work");
      co_await node.Compute(node.cpu().spec().dmips_per_thread * 0.5);
    }
    co_await sim::Delay(sched, 0.25);
  }
}

TEST(EnergyAttributorTest, LedgerConservesTheNodeIntegral) {
  sim::Scheduler sched;
  hw::ServerNode node(&sched, hw::EdisonProfile(), 0);
  Tracer tracer;
  EnergyAttributor energy;
  node.ObserveEnergy(&energy);
  EXPECT_TRUE(energy.observing(0));
  EXPECT_FALSE(energy.observing(1));
  sim::Spawn(sched, SpannedCompute(node, tracer, energy));
  sched.Run();

  EnergyLedger ledger = energy.TakeLedger();
  ASSERT_EQ(ledger.rows.size(), 3u);
  Joules attributed = 0;
  for (const SpanEnergyRow& row : ledger.rows) {
    EXPECT_GT(row.joules, 0.0);
    EXPECT_EQ(row.node_id, 0);
    EXPECT_EQ(std::string_view(row.name), "work");
    attributed += row.joules;
  }
  const Joules total = node.power().CumulativeJoules();
  EXPECT_GT(ledger.unattributed_joules, 0.0);  // idle gaps between spans
  EXPECT_NEAR(ledger.total_joules, total, total * 1e-12);
  EXPECT_NEAR(attributed + ledger.unattributed_joules, total,
              total * 1e-12);

  // TakeLedger zeroes the accumulators but keeps the subscription.
  EXPECT_EQ(energy.TakeLedger().rows.size(), 0u);
  EXPECT_TRUE(energy.observing(0));
}

TEST(EnergyAttributorTest, ConcurrentResidentsSplitEqually) {
  sim::Scheduler sched;
  // Idle node: power is a known constant, so attribution is analytic.
  hw::ServerNode node(&sched, hw::EdisonProfile(), 0);
  const Watts p = hw::EdisonProfile().power.idle;
  Tracer tracer;
  EnergyAttributor energy;
  node.ObserveEnergy(&energy);

  TraceHandle a = RootHandle(tracer, sched);
  a.ctx.span_id = tracer.NewSpanId();
  TraceHandle b = RootHandle(tracer, sched);
  b.ctx.span_id = tracer.NewSpanId();
  sched.ScheduleAt(1.0, [&] { energy.SpanEnter(0, a, "a"); });
  sched.ScheduleAt(2.0, [&] { energy.BeginWindow(); });
  sched.ScheduleAt(3.0, [&] { energy.SpanEnter(0, b, "b"); });
  sched.ScheduleAt(5.0, [&] { energy.SpanLeave(0, a); });
  sched.ScheduleAt(7.0, [&] { energy.SpanLeave(0, b); });
  sched.ScheduleAt(8.0, [&] { energy.EndWindow(); });
  sched.ScheduleAt(10.0, [] {});
  sched.Run();

  EnergyLedger ledger = energy.TakeLedger();
  ASSERT_EQ(ledger.rows.size(), 2u);
  // a: alone on [1,3], half of [3,5]. b: half of [3,5], alone on [5,7].
  EXPECT_NEAR(ledger.rows[0].joules, 3.0 * p, p * 1e-9);
  EXPECT_NEAR(ledger.rows[1].joules, 3.0 * p, p * 1e-9);
  // Idle accrues outside any residency: [0,1] + [7,10].
  EXPECT_NEAR(ledger.unattributed_joules, 4.0 * p, p * 1e-9);
  EXPECT_NEAR(ledger.total_joules, 10.0 * p, p * 1e-9);
  EXPECT_NEAR(ledger.window_joules, 6.0 * p, p * 1e-9);

  // Unobserved nodes and null handles are silent no-ops.
  energy.SpanEnter(42, a, "a");
  energy.SpanEnter(0, TraceHandle{}, "null");
  EXPECT_EQ(energy.TakeLedger().rows.size(), 0u);
}

// Does the tree carry an instant `name` nested under span `span_id`?
bool HasInstant(const TraceTree& tree, std::uint64_t span_id,
                std::string_view name) {
  for (const InstantRecord& inst : tree.instants) {
    if (inst.parent_id == span_id && std::string_view(inst.name) == name) {
      return true;
    }
  }
  return false;
}

// The tentpole's web golden: with every request sampled, the report's
// Table 7 columns (per-request db/cache/total delay over the measurement
// window) must be re-derivable from the exported span tree alone.
TEST(TraceDerivationTest, Table7DecompositionMatchesReport) {
  web::WebTestbedConfig cfg = web::EdisonWebTestbed(2, 1);
  cfg.seed = 424242;
  Tracer tracer;
  EnergyAttributor energy;
  cfg.tracer = &tracer;
  cfg.trace_sample_every = 1;
  cfg.energy = &energy;
  web::WebExperiment exp(std::move(cfg));
  const web::OpenLoopReport report =
      exp.MeasureOpenLoop(web::HeavyMix(), 150.0, Seconds(4));

  TraceLog log = tracer.TakeLog();
  SimTime measure_start = -1;
  for (const TraceEvent& e : log.events) {
    if (std::string_view(e.name) == "measure_start") measure_start = e.time;
  }
  ASSERT_GE(measure_start, 0.0) << "window mark missing from trace";

  // Replay the server-side stats windowing: each OnlineStats add happens
  // at the corresponding span's end, and ResetStats fires at the
  // measure_start mark — so spans ending from the mark on are exactly
  // the report's samples. 500 replies never add to total_delay.
  OnlineStats db;
  OnlineStats cache;
  OnlineStats total;
  for (const TraceTree& tree : BuildTraceTrees(log)) {
    for (const SpanRecord& s : tree.spans) {
      if (!s.complete || s.end < measure_start) continue;
      const std::string_view name(s.name);
      if (name == "db") {
        db.Add(s.end - s.begin);
      } else if (name == "cache") {
        cache.Add(s.end - s.begin);
      } else if (name == "serve" &&
                 !HasInstant(tree, s.span_id, "http_500")) {
        total.Add(s.end - s.begin);
      }
    }
  }
  ASSERT_GT(total.count(), 100u);
  EXPECT_EQ(db.count(), report.db_delay.count());
  EXPECT_EQ(cache.count(), report.cache_delay.count());
  EXPECT_EQ(total.count(), report.total_delay.count());
  // Means agree to fp noise (the report merges per-server accumulators
  // in a different order than the flat trace scan).
  EXPECT_NEAR(db.mean(), report.db_delay.mean(),
              report.db_delay.mean() * 1e-9);
  EXPECT_NEAR(cache.mean(), report.cache_delay.mean(),
              report.cache_delay.mean() * 1e-9);
  EXPECT_NEAR(total.mean(), report.total_delay.mean(),
              report.total_delay.mean() * 1e-9);

  // The energy ledger saw the same simulation: spans carry positive
  // joules and conservation holds across the whole web+cache+db tier.
  EnergyLedger ledger = energy.TakeLedger();
  ASSERT_FALSE(ledger.rows.empty());
  Joules attributed = 0;
  for (const SpanEnergyRow& row : ledger.rows) {
    EXPECT_GT(row.joules, 0.0);
    attributed += row.joules;
  }
  EXPECT_NEAR(attributed + ledger.unattributed_joules, ledger.total_joules,
              ledger.total_joules * 1e-9);
  EXPECT_GT(ledger.window_joules, 0.0);
  EXPECT_LT(ledger.window_joules, ledger.total_joules);
}

// The tentpole's KV golden: queries-per-joule re-derived from the causal
// trace (in-window ok query count) and the ledger's window subtotal must
// match the report's quotient.
TEST(TraceDerivationTest, KvQueriesPerJouleMatchesReport) {
  kv::KvExperimentConfig config;
  config.node_profile = hw::EdisonProfile();
  config.node_count = 4;
  config.seed = 77;
  Tracer tracer;
  EnergyAttributor energy;
  config.tracer = &tracer;
  config.trace_sample_every = 1;
  config.energy = &energy;
  kv::KvExperiment exp(std::move(config));
  const Duration measure = Seconds(4);
  const kv::KvReport report = exp.Measure(800.0, measure);

  TraceLog log = tracer.TakeLog();
  EnergyLedger ledger = energy.TakeLedger();
  SimTime measure_start = -1;
  SimTime measure_end = -1;
  for (const TraceEvent& e : log.events) {
    const std::string_view name(e.name);
    if (name == "measure_start") measure_start = e.time;
    if (name == "measure_end") measure_end = e.time;
  }
  ASSERT_GE(measure_start, 0.0);
  ASSERT_GT(measure_end, measure_start);

  std::size_t done = 0;
  OnlineStats latency;
  for (const TraceTree& tree : BuildTraceTrees(log)) {
    const SpanRecord& root = tree.spans[tree.root];
    if (std::string_view(root.name) != "query") continue;
    if (root.begin < measure_start || root.begin >= measure_end) continue;
    if (HasInstant(tree, root.span_id, "route_failed")) continue;
    ++done;
    latency.Add(root.end - root.begin);
  }
  ASSERT_GT(done, 100u);
  EXPECT_EQ(static_cast<double>(done), report.achieved_qps * measure);
  EXPECT_NEAR(latency.mean(), report.mean_latency,
              report.mean_latency * 1e-9);

  // queries / store-tier window joules: the ledger's window subtotal is
  // the same integral the report differences out of CumulativeJoules
  // (summation order differs, hence the relative tolerance).
  ASSERT_GT(ledger.window_joules, 0.0);
  const double derived_qpj =
      static_cast<double>(done) / ledger.window_joules;
  EXPECT_NEAR(derived_qpj, report.queries_per_joule,
              report.queries_per_joule * 1e-6);
}

// The open-loop satellite's golden (docs/openloop.md): with every query
// sampled, slo_goodput_per_joule must be re-derivable from the trace +
// ledger exports alone — both by hand (scan the trees) and through
// SummarizeSloGoodput, the helper the --trace-summary roll-up prints.
TEST(TraceDerivationTest, SloGoodputPerJouleMatchesReport) {
  const Duration slo = Milliseconds(8);  // bisects the Edison KV latency
  kv::KvExperimentConfig config;
  config.node_profile = hw::EdisonProfile();
  config.node_count = 4;
  config.seed = 77;
  config.openloop.slo = slo;  // default gate stays unbounded: no sheds
  Tracer tracer;
  EnergyAttributor energy;
  config.tracer = &tracer;
  config.trace_sample_every = 1;
  config.energy = &energy;
  kv::KvExperiment exp(std::move(config));
  const kv::KvReport report = exp.Measure(800.0, Seconds(4));

  const std::vector<TraceLog> logs = {tracer.TakeLog()};
  const std::vector<EnergyLedger> ledgers = {energy.TakeLedger()};
  SimTime measure_start = -1;
  SimTime measure_end = -1;
  for (const TraceEvent& e : logs[0].events) {
    const std::string_view name(e.name);
    if (name == "measure_start") measure_start = e.time;
    if (name == "measure_end") measure_end = e.time;
  }
  ASSERT_GE(measure_start, 0.0);
  ASSERT_GT(measure_end, measure_start);

  // Hand derivation. With the unbounded gate every query dispatches at
  // its intended arrival, so the root span's begin IS the intended time
  // and its extent IS the honest latency the recorder scored.
  std::int64_t offered = 0, under = 0, failed = 0;
  for (const TraceTree& tree : BuildTraceTrees(logs[0])) {
    const SpanRecord& root = tree.spans[tree.root];
    if (root.begin < measure_start || root.begin >= measure_end) continue;
    ++offered;
    if (HasInstant(tree, root.span_id, "route_failed")) {
      ++failed;
      continue;
    }
    if (tree.complete && root.end - root.begin <= slo) ++under;
  }
  // The steady 4-node ring routes everything; a failure here would break
  // the recorder/trace equivalence this test pins.
  ASSERT_EQ(failed, 0);
  ASSERT_GT(offered, 100);
  // The SLO genuinely bisects the distribution — both sides populated.
  EXPECT_GT(under, 0);
  EXPECT_LT(under, offered);

  EXPECT_NEAR(report.slo_good_fraction,
              static_cast<double>(under) / static_cast<double>(offered),
              1e-12);
  ASSERT_GT(ledgers[0].window_joules, 0.0);
  const double derived =
      static_cast<double>(under) / ledgers[0].window_joules;
  EXPECT_NEAR(derived, report.slo_goodput_per_joule,
              report.slo_goodput_per_joule * 1e-6);

  // The packaged helper agrees with the hand derivation exactly.
  const SloSummary s = SummarizeSloGoodput(logs, ledgers, slo);
  EXPECT_EQ(s.window_traces, offered);
  EXPECT_EQ(s.under_slo, under);
  EXPECT_NEAR(s.window_joules, ledgers[0].window_joules, 1e-12);
  EXPECT_NEAR(s.slo_goodput_per_joule, report.slo_goodput_per_joule,
              report.slo_goodput_per_joule * 1e-6);
}

}  // namespace
}  // namespace wimpy::obs
