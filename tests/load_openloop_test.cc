// Open-loop load engine (src/load/): arrival-model statistics, schedule
// determinism across sweep threads, admission-gate conservation, and the
// coordinated-omission property the recorder exists for.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "load/arrival.h"
#include "load/openloop.h"
#include "sim/replication.h"

namespace wimpy::load {
namespace {

// Poisson gaps at rate r are Exponential(r): mean 1/r, variance 1/r^2.
// With n = 200k samples the sample mean is Gaussian with sd
// 1/(r*sqrt(n)); +-5 sd bounds make the test deterministic-in-practice
// for any fixed seed while still catching a mis-scaled generator.
TEST(ArrivalProcessTest, PoissonInterarrivalMeanAndVariance) {
  const double rate = 1000.0;
  ArrivalConfig config;
  config.model = ArrivalModel::kPoisson;
  config.rate = rate;
  ArrivalProcess arrivals(config);
  Rng rng(2016);
  const int n = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const Duration gap = arrivals.NextGap(rng);
    ASSERT_GT(gap, 0.0);
    sum += gap;
    sumsq += gap * gap;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  const double mean_sd = 1.0 / (rate * std::sqrt(static_cast<double>(n)));
  EXPECT_NEAR(mean, 1.0 / rate, 5 * mean_sd);
  // Exponential variance estimator sd ~ sqrt(8)/ (r^2 sqrt(n)).
  EXPECT_NEAR(var, 1.0 / (rate * rate),
              5 * std::sqrt(8.0) / (rate * rate * std::sqrt(1.0 * n)));
}

// Golden-compatibility contract (docs/openloop.md): the Poisson model
// draws exactly one Exponential per gap, so an ArrivalProcess is
// stream-identical to the inline rng.Exponential(rate) it replaced.
TEST(ArrivalProcessTest, PoissonMatchesInlineExponentialStream) {
  ArrivalConfig config;
  config.rate = 350.0;
  ArrivalProcess arrivals(config);
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(arrivals.NextGap(a), b.Exponential(350.0));
  }
}

// MMPP normalisation: the time-averaged rate stays `rate` regardless of
// burstiness, while dispersion of windowed counts exceeds Poisson's
// (variance/mean of counts in fixed windows > 1; == 1 for Poisson).
TEST(ArrivalProcessTest, MmppMeanRatePreservedAndOverdispersed) {
  const double rate = 1000.0;
  ArrivalConfig config;
  config.model = ArrivalModel::kMmpp;
  config.rate = rate;
  config.burstiness = 8.0;
  config.burst_fraction = 0.2;
  config.cycle = Seconds(0.5);
  ArrivalProcess arrivals(config);
  Rng rng(424242);

  const double window = 0.25;  // half a burst dwell: counts stay lumpy
  std::vector<int> counts;
  double t = 0, edge = window;
  int in_window = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    t += arrivals.NextGap(rng);
    while (t >= edge) {
      counts.push_back(in_window);
      in_window = 0;
      edge += window;
    }
    ++in_window;
  }
  const double mean_rate = n / t;
  EXPECT_NEAR(mean_rate, rate, 0.05 * rate);

  double sum = 0;
  for (int c : counts) sum += c;
  const double mean_count = sum / counts.size();
  double var = 0;
  for (int c : counts) var += (c - mean_count) * (c - mean_count);
  var /= counts.size();
  // Poisson would give var/mean == 1; MMPP-8 at 20% burst is far above.
  EXPECT_GT(var / mean_count, 2.0);
}

// An arrival schedule is a pure function of (cell, seed): RunSweep must
// produce bit-identical schedules at --threads=1 and --threads=8.
TEST(ArrivalProcessTest, SchedulesBitIdenticalAcrossSweepThreads) {
  struct Cell {
    ArrivalModel model;
    double rate;
  };
  const std::vector<Cell> cells = {{ArrivalModel::kPoisson, 500.0},
                                   {ArrivalModel::kMmpp, 500.0},
                                   {ArrivalModel::kMmpp, 4000.0}};
  auto schedule = [](const Cell& cell, Rng& root) {
    ArrivalConfig config;
    config.model = cell.model;
    config.rate = cell.rate;
    ArrivalProcess arrivals(config);
    Rng rng(root.Next());
    std::vector<double> times;
    double t = 0;
    for (int i = 0; i < 512; ++i) {
      t += arrivals.NextGap(rng);
      times.push_back(t);
    }
    return times;
  };
  const auto one = sim::RunSweep(cells, sim::SweepPlan{3, 1, 77}, schedule);
  const auto eight = sim::RunSweep(cells, sim::SweepPlan{3, 8, 77}, schedule);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t c = 0; c < one.size(); ++c) {
    ASSERT_EQ(one[c].size(), eight[c].size());
    for (std::size_t r = 0; r < one[c].size(); ++r) {
      EXPECT_EQ(one[c][r], eight[c][r]);  // exact, not approximate
    }
  }
}

TEST(AdmissionGateTest, ShedVsQueueConservation) {
  OpenLoopConfig config;
  config.max_outstanding = 2;
  config.queue_limit = 2;
  AdmissionGate<int> gate(config);

  // Two dispatches fill the slots.
  EXPECT_EQ(gate.Admit(), Admission::kDispatch);
  EXPECT_EQ(gate.Admit(), Admission::kDispatch);
  EXPECT_EQ(gate.outstanding(), 2);
  // Two more queue.
  EXPECT_EQ(gate.Admit(), Admission::kQueue);
  gate.Enqueue(1.0, 100);
  EXPECT_EQ(gate.Admit(), Admission::kQueue);
  gate.Enqueue(2.0, 200);
  EXPECT_EQ(gate.queue_depth(), 2u);
  // The waiting room is full: shed.
  EXPECT_EQ(gate.Admit(), Admission::kShed);
  EXPECT_EQ(gate.offered(),
            gate.dispatched() + static_cast<std::int64_t>(gate.queue_depth()) +
                gate.shed());

  // A completion hands its slot to the queue head in FIFO order;
  // outstanding stays pinned at the cap.
  auto next = gate.OnComplete();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->intended, 1.0);
  EXPECT_EQ(next->payload, 100);
  EXPECT_EQ(gate.outstanding(), 2);
  next = gate.OnComplete();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->intended, 2.0);
  // Queue drained: completions free slots.
  EXPECT_FALSE(gate.OnComplete().has_value());
  EXPECT_FALSE(gate.OnComplete().has_value());
  EXPECT_EQ(gate.outstanding(), 0);
  EXPECT_EQ(gate.offered(), 5);
  EXPECT_EQ(gate.dispatched(), 4);
  EXPECT_EQ(gate.shed(), 1);
  EXPECT_EQ(gate.queue_depth(), 0u);

  // Unbounded gate never queues or sheds.
  AdmissionGate<int> open(OpenLoopConfig{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(open.Admit(), Admission::kDispatch);
  }
  EXPECT_EQ(open.outstanding(), 100);
}

// The recorder's reason to exist: under overload, service latency
// (dispatch -> completion) looks flat while intended latency
// (arrival -> completion) grows with the backlog. Synthetic overload:
// arrivals every 1 ms, service takes exactly 2 ms, one server.
TEST(OpenLoopRecorderTest, IntendedTailDominatesServiceTailUnderOverload) {
  OpenLoopRecorder recorder(0.0, 10.0, /*slo=*/Milliseconds(20));
  double server_free = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const SimTime intended = i * 0.001;
    const SimTime dispatched = std::max(server_free, intended);
    const SimTime finished = dispatched + 0.002;
    server_free = finished;
    recorder.OnComplete(intended, dispatched, finished, true);
  }
  const double service_p99 = recorder.service_percentiles().Percentile(0.99);
  const double intended_p99 =
      recorder.intended_percentiles().Percentile(0.99);
  EXPECT_NEAR(service_p99, 0.002, 1e-12);
  // Backlog grows ~1 ms per arrival: the honest p99 is ~1 s by the end.
  EXPECT_GT(intended_p99, 100 * service_p99);
  // SLO accounting is against intended latency: only the first handful
  // of requests finish within 20 ms of their arrival.
  EXPECT_LT(recorder.SloGoodFraction(), 0.05);
  EXPECT_GT(recorder.slo_good(), 0);
}

TEST(OpenLoopRecorderTest, WindowingByIntendedArrivalAndSheds) {
  OpenLoopRecorder recorder(1.0, 2.0, /*slo=*/0.1);
  // Intended before the window: ignored even though it finishes inside.
  recorder.OnComplete(0.5, 0.5, 1.5, true);
  // Intended inside, finishes after the window edge: still counted.
  recorder.OnComplete(1.9, 1.9, 2.5, true);
  // Error completion: counted offered, never SLO-good.
  recorder.OnComplete(1.5, 1.5, 1.55, false);
  recorder.OnShed(1.2);
  recorder.OnShed(2.7);  // outside the window: ignored
  EXPECT_EQ(recorder.completed(), 2);
  EXPECT_EQ(recorder.ok(), 1);
  EXPECT_EQ(recorder.errors(), 1);
  EXPECT_EQ(recorder.shed(), 1);
  EXPECT_EQ(recorder.offered(), 3);
  EXPECT_EQ(recorder.slo_good(), 0);  // the one OK took 0.6 s > 0.1 s
  EXPECT_EQ(recorder.SloGoodFraction(), 0.0);
  EXPECT_EQ(recorder.SloGoodputPerJoule(50.0), 0.0);

  OpenLoopRecorder good(0.0, 1.0, 0.1);
  good.OnComplete(0.5, 0.5, 0.55, true);
  EXPECT_EQ(good.slo_good(), 1);
  EXPECT_EQ(good.SloGoodFraction(), 1.0);
  EXPECT_NEAR(good.SloGoodputPerJoule(50.0), 1.0 / 50.0, 1e-15);
}

}  // namespace
}  // namespace wimpy::load
