#include "mapreduce/jobs.h"

#include <gtest/gtest.h>

#include "mapreduce/testbed.h"

namespace wimpy::mapreduce {
namespace {

// Small clusters + scaled-down inputs keep these integration tests quick
// while exercising the full allocate/read/map/shuffle/reduce pipeline.

JobSpec SmallWordCount(const MrClusterConfig& config) {
  JobSpec spec = WordCountJob(config);
  spec.input_files = 20;
  spec.input_bytes = MB(100);
  spec.reducers = 8;
  return spec;
}

TEST(MrTestbedTest, ClusterDefaultsMatchSection52) {
  const MrClusterConfig edison = EdisonMrCluster(35);
  EXPECT_EQ(edison.hdfs.block_size, MiB(16));
  EXPECT_EQ(edison.hdfs.replication, 2);
  EXPECT_EQ(edison.yarn.node_vcores, 2);
  EXPECT_EQ(TotalVcores(edison), 70);
  const MrClusterConfig dell = DellMrCluster(2);
  EXPECT_EQ(dell.hdfs.block_size, MiB(64));
  EXPECT_EQ(dell.hdfs.replication, 1);
  EXPECT_EQ(TotalVcores(dell), 24);
}

TEST(MrTestbedTest, JobCatalogShapes) {
  const MrClusterConfig edison = EdisonMrCluster(35);
  const JobSpec wc = WordCountJob(edison);
  EXPECT_FALSE(wc.combine_inputs);
  EXPECT_FALSE(wc.has_combiner);
  const JobSpec wc2 = WordCount2Job(edison);
  EXPECT_TRUE(wc2.combine_inputs);
  EXPECT_TRUE(wc2.has_combiner);
  // ~15 MB splits with 20% packing slack, as tuned in the paper.
  EXPECT_NEAR(static_cast<double>(wc2.max_split_size),
              1.2 * GB(1) / 70.0, 2e6);
  const JobSpec pi = PiJob(edison);
  EXPECT_EQ(pi.synthetic_map_tasks, 70);
  EXPECT_EQ(pi.reducers, 1);
  const JobSpec ts = TeraSortJob(edison);
  // One 64 MiB block per input file (paper: 168 files for its ~10 GB of
  // teragen output; 10^10 bytes / 64 MiB = 149 here).
  EXPECT_EQ(ts.input_files,
            static_cast<int>(kTeraInputBytes / MiB(64)));
  EXPECT_DOUBLE_EQ(ts.job_output_ratio, 1.0);
  // Dell efficiency calibration present.
  EXPECT_LT(wc.EfficiencyFor("dell-r620"), 1.0);
  EXPECT_DOUBLE_EQ(wc.EfficiencyFor("edison"), 1.0);
}

TEST(MrJobTest, WordCountRunsToCompletion) {
  MrTestbed testbed(EdisonMrCluster(4));
  JobSpec spec = SmallWordCount(testbed.config());
  LoadInputFor(spec, &testbed);
  const MrRunResult result = testbed.RunJob(spec);
  EXPECT_GT(result.job.elapsed, 10.0);
  EXPECT_LT(result.job.elapsed, 3000.0);
  EXPECT_EQ(result.job.map_tasks, 20);
  EXPECT_EQ(result.job.reduce_tasks, 8);
  EXPECT_GT(result.slave_joules, 0);
  EXPECT_GT(result.work_done_per_joule, 0);
  EXPECT_FALSE(result.timeline.empty());
}

TEST(MrJobTest, TimelineShowsUtilisationAndProgress) {
  MrTestbed testbed(EdisonMrCluster(4));
  JobSpec spec = SmallWordCount(testbed.config());
  LoadInputFor(spec, &testbed);
  const MrRunResult result = testbed.RunJob(spec);
  // Map progress is monotone and ends at 100; CPU shows real activity.
  double prev = -1;
  double peak_cpu = 0;
  for (const auto& s : result.timeline) {
    EXPECT_GE(s.gauge_a, prev);
    prev = s.gauge_a;
    peak_cpu = std::max(peak_cpu, s.cpu_pct);
  }
  EXPECT_NEAR(result.timeline.back().gauge_a, 100.0, 1e-9);
  EXPECT_GT(peak_cpu, 50.0);
  // Memory telemetry includes the daemon baseline (~37% on Edison).
  EXPECT_GT(result.timeline.front().memory_pct, 30.0);
}

TEST(MrJobTest, CombinerCutsShuffleBytes) {
  MrTestbed testbed1(EdisonMrCluster(4));
  JobSpec wc = SmallWordCount(testbed1.config());
  LoadInputFor(wc, &testbed1);
  const MrRunResult r1 = testbed1.RunJob(wc);

  MrTestbed testbed2(EdisonMrCluster(4));
  JobSpec wc2 = wc;
  wc2.name = "wordcount2";
  wc2.combine_inputs = true;
  wc2.max_split_size = MiB(12);
  wc2.has_combiner = true;
  wc2.combiner_survival = 0.05;
  wc2.combiner_minstr_per_mb = 500;
  LoadInputFor(wc2, &testbed2);
  const MrRunResult r2 = testbed2.RunJob(wc2);

  EXPECT_LT(r2.job.map_output_bytes, r1.job.map_output_bytes / 10);
  EXPECT_LT(r2.job.map_tasks, r1.job.map_tasks);
  EXPECT_LT(r2.job.elapsed, r1.job.elapsed);
  EXPECT_LT(r2.slave_joules, r1.slave_joules);
}

TEST(MrJobTest, DataLocalityIsHighWithReplication) {
  MrTestbed testbed(EdisonMrCluster(8));
  JobSpec spec = SmallWordCount(testbed.config());
  LoadInputFor(spec, &testbed);
  const MrRunResult result = testbed.RunJob(spec);
  // Paper tunes replication so ~95% of maps are data-local.
  EXPECT_GT(result.job.data_local_fraction, 0.7);
}

TEST(MrJobTest, PiJobComputeBound) {
  MrTestbed testbed(EdisonMrCluster(4));
  const JobSpec pi = PiJob(testbed.config(), 100'000'000LL);
  const MrRunResult result = testbed.RunJob(pi);
  EXPECT_EQ(result.job.map_tasks, 8);  // one per vcore
  EXPECT_GT(result.job.elapsed, 5.0);
  // Compute-only: no HDFS input -> no work-done-per-joule metric.
  EXPECT_EQ(result.work_done_per_joule, 0);
}

TEST(MrJobTest, ReduceSlowstartDelaysReducers) {
  MrTestbed testbed(EdisonMrCluster(4));
  JobSpec spec = SmallWordCount(testbed.config());
  LoadInputFor(spec, &testbed);
  const MrRunResult result = testbed.RunJob(spec);
  EXPECT_GT(result.job.first_reduce_launch, result.job.first_map_launch);
  EXPECT_LT(result.job.first_reduce_launch, result.job.finished);
}

TEST(MrJobTest, DellClusterRunsSameJobFaster) {
  MrTestbed edison(EdisonMrCluster(4));
  JobSpec e_spec = SmallWordCount(edison.config());
  LoadInputFor(e_spec, &edison);
  const MrRunResult e = edison.RunJob(e_spec);

  MrTestbed dell(DellMrCluster(2));
  JobSpec d_spec = SmallWordCount(dell.config());
  LoadInputFor(d_spec, &dell);
  const MrRunResult d = dell.RunJob(d_spec);

  EXPECT_LT(d.job.elapsed, e.job.elapsed);
  // ...but at far higher power.
  EXPECT_GT(d.mean_slave_power, 20 * e.mean_slave_power);
}

}  // namespace
}  // namespace wimpy::mapreduce
