// Shape tests for the paper's web-service phenomena: the Table 7 delay
// decomposition trends and the Figure 10/11 SYN-backoff delay spikes.
// These assert the *mechanisms*, at reduced scale so they stay fast.
#include <gtest/gtest.h>

#include "web/service.h"

namespace wimpy::web {
namespace {

TEST(WebShapeTest, CacheDelayGrowsFasterThanDbDelayUnderLoad) {
  // Table 7: on Edison, cache-fetch delay blows up with request rate
  // while database delay (served by the Dell MySQL pair) only creeps.
  WebExperiment exp(EdisonWebTestbed(6, 3));
  const OpenLoopReport light =
      exp.MeasureOpenLoop(HeavyMix(), 120, Seconds(8));
  // Near this quarter-cluster's capacity (~2k rps), the three cache
  // nodes' NICs carry ~50% load and queueing sets in.
  const OpenLoopReport heavy =
      exp.MeasureOpenLoop(HeavyMix(), 1950, Seconds(8));
  ASSERT_GT(light.cache_delay.count(), 100u);
  ASSERT_GT(heavy.cache_delay.count(), 100u);
  const double cache_growth =
      heavy.cache_delay.mean() / light.cache_delay.mean();
  const double db_growth = heavy.db_delay.mean() / light.db_delay.mean();
  // Direction of Table 7: the cache path (Edison NICs + in-cluster
  // latency) degrades with load while the DB path (Dell MySQL pair)
  // barely moves. The paper's measured magnitude (45x at full scale) is
  // larger than this model reproduces — see EXPERIMENTS.md.
  EXPECT_GT(cache_growth, 1.12);
  EXPECT_GT(cache_growth, db_growth);
}

TEST(WebShapeTest, DellOverloadProducesSecondSpikeNearOneSecond) {
  // Figure 11: fresh-connection clients against 2 Dell servers at a rate
  // beyond their accept capacity see SYN retransmissions; the delay
  // histogram grows a secondary mode near 1 s.
  WebExperiment exp(DellWebTestbed(2, 1));
  const OpenLoopReport report =
      exp.MeasureOpenLoop(LightMix(), 2600, Seconds(10), 8.0, 32);
  const LinearHistogram& h = report.delay_histogram;
  ASSERT_GT(h.total(), 1000u);
  // Mass in the 1 s +/- 0.25 s region (buckets 3..4 of 32 over [0,8)).
  std::size_t near_one = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.BucketLow(i) >= 0.75 && h.BucketHigh(i) <= 1.5) {
      near_one += h.BucketValue(i);
    }
  }
  EXPECT_GT(near_one, h.total() / 100) << h.ToAscii();
}

TEST(WebShapeTest, EdisonSameLoadHasFewerReconnects) {
  // Figure 10 vs 11: the same offered load spread over 12 Edison servers
  // produces proportionally fewer SYN drops than over 2 Dells.
  WebExperiment edison(EdisonWebTestbed(12, 6));
  const OpenLoopReport e =
      edison.MeasureOpenLoop(LightMix(), 2600, Seconds(10), 8.0, 32);
  WebExperiment dell(DellWebTestbed(2, 1));
  const OpenLoopReport d =
      dell.MeasureOpenLoop(LightMix(), 2600, Seconds(10), 8.0, 32);
  auto tail_fraction = [](const LinearHistogram& h) {
    std::size_t tail = h.overflow();
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      if (h.BucketLow(i) >= 0.75) tail += h.BucketValue(i);
    }
    return static_cast<double>(tail) /
           static_cast<double>(std::max<std::size_t>(1, h.total()));
  };
  EXPECT_LT(tail_fraction(e.delay_histogram),
            tail_fraction(d.delay_histogram));
}

TEST(WebShapeTest, HeavierMixesReduceThroughputAtHighConcurrency) {
  // Figure 5: at 1024-level concurrency the 10%-image mix collapses
  // harder than the no-image mix.
  WebExperiment exp(EdisonWebTestbed(6, 3));
  const double conc = 512;  // scaled for the 1/4 cluster
  const LevelReport plain = exp.MeasureClosedLoop(
      LightMix(), conc, 4, Seconds(2), Seconds(8));
  const LevelReport img = exp.MeasureClosedLoop(
      MixWithImagePercent(0.10), conc, 4, Seconds(2), Seconds(8));
  EXPECT_LT(img.achieved_rps, plain.achieved_rps * 1.02);
  EXPECT_GT(img.mean_response, plain.mean_response);
}

}  // namespace
}  // namespace wimpy::web
