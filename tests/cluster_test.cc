#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "cluster/metrics.h"
#include "hw/profiles.h"
#include "sim/process.h"

namespace wimpy::cluster {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : fabric_(&sched_), cluster_(&sched_, &fabric_) {}

  sim::Scheduler sched_;
  net::Fabric fabric_;
  Cluster cluster_;
};

TEST_F(ClusterTest, AddNodesAssignsRolesAndIds) {
  auto web = cluster_.AddNodes(hw::EdisonProfile(), 24, "web-server",
                               "edison-room");
  auto cache = cluster_.AddNodes(hw::EdisonProfile(), 11, "cache-server",
                                 "edison-room");
  EXPECT_EQ(web.size(), 24u);
  EXPECT_EQ(cache.size(), 11u);
  EXPECT_EQ(cluster_.size(), 35u);
  EXPECT_EQ(cluster_.NodesInRole("web-server").size(), 24u);
  EXPECT_EQ(cluster_.NodesInRole("nonexistent").size(), 0u);
  EXPECT_EQ(web[0]->id(), 0);
  EXPECT_EQ(cache[0]->id(), 24);
  EXPECT_EQ(cluster_.node(24), cache[0]);
  EXPECT_EQ(cluster_.node(999), nullptr);
  EXPECT_EQ(fabric_.GroupOf(0), "edison-room");
}

TEST_F(ClusterTest, IdleClusterPowerMatchesTable3) {
  cluster_.AddNodes(hw::EdisonProfile(), 35, "all", "edison-room");
  EXPECT_NEAR(cluster_.TotalWatts(), 49.0, 0.01);  // 35 x 1.40 W
}

TEST_F(ClusterTest, RoleScopedEnergyAccounting) {
  cluster_.AddNodes(hw::EdisonProfile(), 2, "workers", "edison-room");
  cluster_.AddNodes(hw::DellR620Profile(), 1, "master", "dell-room");
  sched_.ScheduleAt(10.0, [] {});
  sched_.Run();
  // Worker-only joules exclude the Dell master — the paper's MapReduce
  // energy accounting does exactly this.
  EXPECT_NEAR(cluster_.CumulativeJoules({"workers"}), 2 * 1.40 * 10, 1e-6);
  EXPECT_NEAR(cluster_.CumulativeJoules(), (2 * 1.40 + 52.0) * 10, 1e-6);
}

sim::Process BurnCpu(hw::ServerNode* node, double seconds) {
  co_await node->Compute(node->cpu().spec().dmips_per_thread * seconds);
}

TEST_F(ClusterTest, MeanUtilisationAcrossRole) {
  auto nodes = cluster_.AddNodes(hw::EdisonProfile(), 4, "w", "edison-room");
  // Load one of four nodes on one of two cores: mean CPU busy = 1/8.
  sim::Spawn(sched_, BurnCpu(nodes[0], 10.0));
  sched_.Run(1.0);
  EXPECT_NEAR(cluster_.MeanCpuBusy("w"), 0.125, 1e-9);
  sched_.Run();
}

TEST_F(ClusterTest, MetricsSamplerRecordsTimeline) {
  auto nodes = cluster_.AddNodes(hw::EdisonProfile(), 1, "w", "edison-room");
  MetricsSampler sampler(&cluster_, {"w"}, 1.0);
  double progress = 0;
  sampler.SetProgressProbe([&] { return std::make_pair(progress, 0.0); });
  sampler.Start();
  sim::Spawn(sched_, BurnCpu(nodes[0], 5.0));  // busy [0, 5] on one core
  sched_.ScheduleAt(3.0, [&] { progress = 50.0; });
  // A running sampler keeps the event queue non-empty forever; bound the
  // run and then stop it.
  sched_.Run(/*until=*/10.5);
  sampler.Stop();
  sched_.Run();
  const auto& samples = sampler.samples();
  ASSERT_GE(samples.size(), 10u);
  EXPECT_EQ(samples[0].time, 0.0);
  EXPECT_NEAR(samples[2].cpu_pct, 50.0, 1e-6);   // one of two cores busy
  EXPECT_NEAR(samples[7].cpu_pct, 0.0, 1e-6);    // after completion
  EXPECT_GT(samples[2].power_watts, 1.40);
  EXPECT_NEAR(samples[8].power_watts, 1.40, 1e-9);
  EXPECT_EQ(samples[2].gauge_a, 0.0);
  EXPECT_EQ(samples[4].gauge_a, 50.0);
}

TEST_F(ClusterTest, SamplerStopCancelsFutureSamples) {
  cluster_.AddNodes(hw::EdisonProfile(), 1, "w", "edison-room");
  MetricsSampler sampler(&cluster_, {"w"}, 1.0);
  sampler.Start();
  sched_.ScheduleAt(3.5, [&] { sampler.Stop(); });
  sched_.ScheduleAt(10.0, [] {});
  sched_.Run();
  EXPECT_EQ(sampler.samples().size(), 4u);  // t = 0, 1, 2, 3
}

}  // namespace
}  // namespace wimpy::cluster
