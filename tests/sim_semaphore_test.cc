#include "sim/semaphore.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/process.h"
#include "sim/scheduler.h"

namespace wimpy::sim {
namespace {

Process HoldFor(Scheduler& sched, Semaphore& sem, Duration hold, int id,
                std::vector<std::pair<int, double>>* acquired) {
  co_await sem.Acquire();
  acquired->emplace_back(id, sched.now());
  co_await Delay(sched, hold);
  sem.Release();
}

TEST(SemaphoreTest, TryAcquireCounts) {
  Scheduler sched;
  Semaphore sem(&sched, 2);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  EXPECT_EQ(sem.in_use(), 2);
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(SemaphoreTest, SerialisesBeyondPermitCount) {
  Scheduler sched;
  Semaphore sem(&sched, 2);
  std::vector<std::pair<int, double>> acquired;
  for (int i = 0; i < 4; ++i) {
    Spawn(sched, HoldFor(sched, sem, 1.0, i, &acquired));
  }
  sched.Run();
  ASSERT_EQ(acquired.size(), 4u);
  // Two run at t=0, two at t=1.
  EXPECT_EQ(acquired[0], (std::pair<int, double>{0, 0.0}));
  EXPECT_EQ(acquired[1], (std::pair<int, double>{1, 0.0}));
  EXPECT_EQ(acquired[2], (std::pair<int, double>{2, 1.0}));
  EXPECT_EQ(acquired[3], (std::pair<int, double>{3, 1.0}));
}

TEST(SemaphoreTest, FifoOrderUnderContention) {
  Scheduler sched;
  Semaphore sem(&sched, 1);
  std::vector<std::pair<int, double>> acquired;
  for (int i = 0; i < 5; ++i) {
    Spawn(sched, HoldFor(sched, sem, 2.0, i, &acquired));
  }
  sched.Run();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(acquired[i].first, i);
    EXPECT_EQ(acquired[i].second, i * 2.0);
  }
  EXPECT_EQ(sem.peak_queue_length(), 4u);
  EXPECT_EQ(sem.available(), 1);
  EXPECT_EQ(sem.in_use(), 0);
}

TEST(SemaphoreTest, AddPermitsWakesWaiters) {
  Scheduler sched;
  Semaphore sem(&sched, 0);
  std::vector<std::pair<int, double>> acquired;
  Spawn(sched, HoldFor(sched, sem, 1.0, 0, &acquired));
  Spawn(sched, HoldFor(sched, sem, 1.0, 1, &acquired));
  sched.ScheduleAt(3.0, [&] { sem.AddPermits(2); });
  sched.Run();
  ASSERT_EQ(acquired.size(), 2u);
  EXPECT_EQ(acquired[0].second, 3.0);
  EXPECT_EQ(acquired[1].second, 3.0);
}

Process GuardedEarlyExit(Scheduler& sched, Semaphore& sem, bool bail,
                         int* completed) {
  SemaphoreGuard guard(sem);
  co_await guard.Acquired();
  co_await Delay(sched, 1.0);
  if (bail) co_return;  // guard releases on scope exit
  co_await Delay(sched, 1.0);
  ++*completed;
}

TEST(SemaphoreTest, GuardReleasesOnEarlyExit) {
  Scheduler sched;
  Semaphore sem(&sched, 1);
  int completed = 0;
  Spawn(sched, GuardedEarlyExit(sched, sem, /*bail=*/true, &completed));
  Spawn(sched, GuardedEarlyExit(sched, sem, /*bail=*/false, &completed));
  sched.Run();
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(sem.available(), 1);  // permit not leaked by the bailing holder
  EXPECT_EQ(sem.in_use(), 0);
}

Process GuardManualRelease(Scheduler& sched, Semaphore& sem,
                           double* released_at) {
  SemaphoreGuard guard(sem);
  co_await guard.Acquired();
  co_await Delay(sched, 1.0);
  guard.Release();
  *released_at = sched.now();
  co_await Delay(sched, 5.0);  // long tail without the permit
}

TEST(SemaphoreTest, GuardManualReleaseFreesPermitEarly) {
  Scheduler sched;
  Semaphore sem(&sched, 1);
  double released_at = -1;
  std::vector<std::pair<int, double>> acquired;
  Spawn(sched, GuardManualRelease(sched, sem, &released_at));
  Spawn(sched, HoldFor(sched, sem, 0.5, 7, &acquired));
  sched.Run();
  EXPECT_EQ(released_at, 1.0);
  ASSERT_EQ(acquired.size(), 1u);
  EXPECT_EQ(acquired[0].second, 1.0);  // waiter got it at release time
}

}  // namespace
}  // namespace wimpy::sim
