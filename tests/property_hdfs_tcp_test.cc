// Property sweeps for HDFS placement and the TCP connection model.
//
// HDFS invariants across (cluster size, block size, replication, file
// sizes): full coverage of bytes by blocks, replica distinctness, balanced
// placement. TCP invariants across (backlog, retry budget): connect delay
// always follows the 2^k-1 backoff lattice, and resources never leak.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <tuple>

#include "hw/profiles.h"
#include "mapreduce/hdfs.h"
#include "net/tcp.h"
#include "sim/process.h"

namespace wimpy {
namespace {

// ---- HDFS ------------------------------------------------------------------

using HdfsCase = std::tuple<int /*nodes*/, Bytes /*block*/, int /*rep*/,
                            Bytes /*file size*/>;

class HdfsProperty : public ::testing::TestWithParam<HdfsCase> {
 protected:
  void SetUp() override {
    auto [nodes, block, rep, file] = GetParam();
    fabric_ = std::make_unique<net::Fabric>(&sched_);
    for (int i = 0; i < nodes; ++i) {
      nodes_.push_back(std::make_unique<hw::ServerNode>(
          &sched_, hw::EdisonProfile(), i));
      fabric_->AddNode(nodes_.back().get(), "room");
      slaves_.push_back(nodes_.back().get());
    }
    hdfs_ = std::make_unique<mapreduce::Hdfs>(
        fabric_.get(), slaves_, mapreduce::HdfsConfig{block, rep}, 7);
  }

  sim::Scheduler sched_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<hw::ServerNode>> nodes_;
  std::vector<hw::ServerNode*> slaves_;
  std::unique_ptr<mapreduce::Hdfs> hdfs_;
};

TEST_P(HdfsProperty, BlocksCoverFileExactly) {
  auto [nodes, block, rep, file_size] = GetParam();
  const auto& file = hdfs_->LoadFile("f", file_size);
  Bytes total = 0;
  for (const auto& b : file.blocks) {
    EXPECT_GT(b.size, 0);
    EXPECT_LE(b.size, block);
    total += b.size;
  }
  EXPECT_EQ(total, file_size);
}

TEST_P(HdfsProperty, ReplicasAreDistinctNodes) {
  auto [nodes, block, rep, file_size] = GetParam();
  const auto& file = hdfs_->LoadFile("f", file_size);
  for (const auto& b : file.blocks) {
    ASSERT_EQ(static_cast<int>(b.replica_nodes.size()), rep);
    std::set<int> unique(b.replica_nodes.begin(), b.replica_nodes.end());
    EXPECT_EQ(unique.size(), b.replica_nodes.size());
    for (int id : b.replica_nodes) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, nodes);
    }
  }
}

TEST_P(HdfsProperty, PlacementIsBalanced) {
  auto [nodes, block, rep, file_size] = GetParam();
  // Load enough files that imbalance would show.
  std::map<int, int> per_node;
  for (int f = 0; f < 8; ++f) {
    const auto& file =
        hdfs_->LoadFile("f" + std::to_string(f), file_size);
    for (const auto& b : file.blocks) {
      for (int id : b.replica_nodes) ++per_node[id];
    }
  }
  int min_count = 1 << 30, max_count = 0;
  for (int i = 0; i < nodes; ++i) {
    min_count = std::min(min_count, per_node[i]);
    max_count = std::max(max_count, per_node[i]);
  }
  // Round-robin placement: spread within one block's worth per node.
  EXPECT_LE(max_count - min_count, rep + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HdfsProperty,
    ::testing::Values(HdfsCase{4, MiB(16), 1, MiB(50)},
                      HdfsCase{4, MiB(16), 2, MiB(64)},
                      HdfsCase{8, MiB(64), 3, MiB(300)},
                      HdfsCase{35, MiB(16), 2, MiB(29)},
                      HdfsCase{2, MiB(64), 1, MiB(64)},
                      HdfsCase{3, MiB(8), 2, MiB(1)}));

// ---- TCP -------------------------------------------------------------------

class TcpBackoffProperty : public ::testing::TestWithParam<int> {};

TEST_P(TcpBackoffProperty, GiveUpDelayFollowsBackoffLattice) {
  const int retries = GetParam();
  sim::Scheduler sched;
  net::Fabric fabric(&sched);
  hw::ServerNode a(&sched, hw::DellR620Profile(), 0);
  hw::ServerNode b(&sched, hw::DellR620Profile(), 1);
  fabric.AddNode(&a, "room");
  fabric.AddNode(&b, "room");
  net::TcpConfig client_cfg;
  client_cfg.syn_max_retries = retries;
  net::TcpConfig server_cfg;
  server_cfg.listen_backlog = 0;  // drop every SYN
  net::TcpHost client(&fabric, 0, client_cfg);
  net::TcpHost server(&fabric, 1, server_cfg);

  net::ConnectResult result;
  auto proc = [&]() -> sim::Process {
    net::TcpConnection conn(&client, &server);
    result = co_await conn.Connect();
  };
  sim::Spawn(sched, proc());
  sched.Run();

  EXPECT_FALSE(result.status.ok());
  // Total wait = 1 + 2 + ... + 2^(k-1) = 2^k - 1 seconds.
  EXPECT_NEAR(result.connect_delay, std::pow(2.0, retries) - 1.0, 1e-6);
  EXPECT_EQ(result.retries, retries);
  EXPECT_EQ(server.syn_drops(), retries + 1);
  // No leaked resources: the connection object closed on scope exit.
  EXPECT_EQ(client.ports_in_use(), 0);
  EXPECT_EQ(server.connections_open(), 0);
  EXPECT_EQ(server.backlog_depth(), 0);
}

INSTANTIATE_TEST_SUITE_P(RetryBudgets, TcpBackoffProperty,
                         ::testing::Values(0, 1, 2, 3, 5));

}  // namespace
}  // namespace wimpy
