// Determinism and statistics tests for the parallel replication runner.
//
// The contract under test (docs/parallel.md): a sweep's results are a
// pure function of (base_seed, configs, replications) — worker count and
// completion order must never leak in. The replication body here is a
// real mini-simulation (Scheduler + FairShareServer + coroutine jobs +
// Rng draws), so a bit-identity failure would catch both runner bugs and
// hidden shared mutable state in the engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/summary.h"
#include "hw/profiles.h"
#include "sim/fair_share.h"
#include "sim/process.h"
#include "sim/replication.h"
#include "sim/scheduler.h"

namespace wimpy::sim {
namespace {

struct MiniConfig {
  double capacity = 8.0;
  double per_job_cap = 2.0;
  int jobs = 40;
};

// Every field is produced by the simulation; comparing replications for
// bit-identity across thread counts compares all of them.
struct MiniResult {
  double finish_time = 0.0;
  double total_served = 0.0;
  double mean_busy = 0.0;
  std::uint64_t draw_hash = 0;
};

bool BitIdentical(const MiniResult& a, const MiniResult& b) {
  return std::memcmp(&a, &b, sizeof(MiniResult)) == 0;
}

Process ServeOne(Scheduler& sched, FairShareServer& server, double at,
                 double demand) {
  co_await Delay(sched, at);
  co_await server.Serve(demand);
}

MiniResult RunMiniSim(const MiniConfig& config, Rng& root) {
  Scheduler sched;
  FairShareServer server(&sched, config.capacity, config.per_job_cap);
  Rng arrivals = root.Fork();
  Rng demands = root.Fork();
  std::uint64_t hash = 1469598103934665603ull;
  std::vector<ProcessRef> refs;
  for (int i = 0; i < config.jobs; ++i) {
    const double at = arrivals.Uniform(0.0, 5.0);
    const double demand = demands.Uniform(0.5, 20.0);
    std::uint64_t bits;
    std::memcpy(&bits, &at, sizeof(bits));
    hash = (hash ^ bits) * 1099511628211ull;
    std::memcpy(&bits, &demand, sizeof(bits));
    hash = (hash ^ bits) * 1099511628211ull;
    refs.push_back(Spawn(sched, ServeOne(sched, server, at, demand)));
  }
  sched.Run();
  MiniResult r;
  r.finish_time = sched.now();
  r.total_served = server.total_work_served();
  r.mean_busy = server.AverageBusyFraction();
  r.draw_hash = hash;
  return r;
}

std::vector<MiniConfig> TwoConfigs() {
  return {MiniConfig{8.0, 2.0, 40}, MiniConfig{3.0, 3.0, 25}};
}

TEST(ReplicationSweepTest, ParallelBitIdenticalToSerial) {
  SweepPlan serial{/*replications=*/8, /*threads=*/1, /*base_seed=*/77};
  SweepPlan parallel{/*replications=*/8, /*threads=*/4, /*base_seed=*/77};
  const auto configs = TwoConfigs();
  const auto expected = RunSweep(configs, serial, RunMiniSim);
  const auto actual = RunSweep(configs, parallel, RunMiniSim);

  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t c = 0; c < expected.size(); ++c) {
    ASSERT_EQ(expected[c].size(), actual[c].size());
    for (std::size_t r = 0; r < expected[c].size(); ++r) {
      EXPECT_TRUE(BitIdentical(expected[c][r], actual[c][r]))
          << "config " << c << " replication " << r;
    }
  }
}

TEST(ReplicationSweepTest, EveryThreadCountAgrees) {
  const auto configs = TwoConfigs();
  SweepPlan base{/*replications=*/6, /*threads=*/1, /*base_seed=*/5};
  const auto expected = RunSweep(configs, base, RunMiniSim);
  for (int threads = 2; threads <= 8; ++threads) {
    SweepPlan plan{/*replications=*/6, threads, /*base_seed=*/5};
    const auto actual = RunSweep(configs, plan, RunMiniSim);
    for (std::size_t c = 0; c < expected.size(); ++c) {
      for (std::size_t r = 0; r < expected[c].size(); ++r) {
        EXPECT_TRUE(BitIdentical(expected[c][r], actual[c][r]))
            << "threads " << threads << " config " << c << " rep " << r;
      }
    }
  }
}

// Fork-tree property at sweep granularity: appending a configuration (or
// more replications) must not perturb the draws of existing cells.
TEST(ReplicationSweepTest, AppendingConfigDoesNotPerturbOthers) {
  SweepPlan plan{/*replications=*/4, /*threads=*/3, /*base_seed=*/11};
  std::vector<MiniConfig> one = {MiniConfig{8.0, 2.0, 40}};
  std::vector<MiniConfig> two = TwoConfigs();
  const auto narrow = RunSweep(one, plan, RunMiniSim);
  const auto wide = RunSweep(two, plan, RunMiniSim);
  for (std::size_t r = 0; r < narrow[0].size(); ++r) {
    EXPECT_TRUE(BitIdentical(narrow[0][r], wide[0][r])) << "rep " << r;
  }

  SweepPlan more{/*replications=*/9, /*threads=*/3, /*base_seed=*/11};
  const auto extended = RunSweep(two, more, RunMiniSim);
  for (std::size_t c = 0; c < wide.size(); ++c) {
    for (std::size_t r = 0; r < wide[c].size(); ++r) {
      EXPECT_TRUE(BitIdentical(wide[c][r], extended[c][r]))
          << "config " << c << " rep " << r;
    }
  }
}

TEST(ReplicationSweepTest, SeedsAreDistinctAcrossGrid) {
  std::set<std::uint64_t> seeds;
  for (int c = 0; c < 64; ++c) {
    for (int r = 0; r < 64; ++r) {
      seeds.insert(ReplicationSeed(123, c, r));
    }
  }
  EXPECT_EQ(seeds.size(), 64u * 64u);
  EXPECT_NE(ReplicationSeed(1, 0, 0), ReplicationSeed(2, 0, 0));
}

TEST(ReplicationSweepTest, EveryTaskRunsExactlyOnce) {
  std::vector<int> configs(7, 0);
  SweepPlan plan{/*replications=*/5, /*threads=*/4, /*base_seed=*/1};
  std::atomic<int> calls{0};
  const auto results = RunSweep(configs, plan, [&](const int&, Rng& root) {
    calls.fetch_add(1);
    return root.Next();
  });
  EXPECT_EQ(calls.load(), 35);
  ASSERT_EQ(results.size(), 7u);
  std::set<std::uint64_t> draws;
  for (const auto& per_config : results) {
    ASSERT_EQ(per_config.size(), 5u);
    for (std::uint64_t d : per_config) draws.insert(d);
  }
  EXPECT_EQ(draws.size(), 35u) << "per-cell root streams must differ";
}

TEST(ReplicationSweepTest, PropagatesTaskException) {
  std::vector<int> configs(4, 0);
  SweepPlan plan{/*replications=*/2, /*threads=*/3, /*base_seed=*/1};
  EXPECT_THROW(RunSweep(configs, plan,
                        [](const int&, Rng&) -> int {
                          throw std::runtime_error("replication failed");
                        }),
               std::runtime_error);
}

// The registry is exercised from replication bodies; hammer first access
// and steady-state reads from the pool (meaningful under TSan, see
// docs/parallel.md).
TEST(ReplicationSweepTest, ProfileRegistrySafeFromReplications) {
  std::vector<int> configs(16, 0);
  SweepPlan plan{/*replications=*/4, /*threads=*/8, /*base_seed=*/3};
  const auto results = RunSweep(configs, plan, [](const int&, Rng&) {
    const auto p = hw::ProfileRegistry::Get("edison");
    return p.ok() ? p.value().cpu.cores : -1;
  });
  for (const auto& per_config : results) {
    for (int cores : per_config) EXPECT_EQ(cores, 2);
  }
}

TEST(SummaryTest, KnownSamples) {
  // mean 10, sample stddev 2.582..., t_{0.975,3} = 3.182.
  const MetricSummary s = Summarize({7.0, 9.0, 11.0, 13.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 10.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 13.0);
  EXPECT_NEAR(s.stddev, 2.581988897, 1e-8);
  EXPECT_NEAR(s.ci95_half_width, 3.182 * 2.581988897 / 2.0, 1e-6);
}

TEST(SummaryTest, DegenerateCounts) {
  EXPECT_EQ(Summarize({}).count, 0u);
  const MetricSummary one = Summarize({42.0});
  EXPECT_DOUBLE_EQ(one.mean, 42.0);
  EXPECT_DOUBLE_EQ(one.ci95_half_width, 0.0);
  EXPECT_EQ(FormatMeanCI(one, 0), "42");
}

TEST(SummaryTest, StudentTQuantiles) {
  EXPECT_NEAR(StudentT95(1), 12.706, 1e-9);
  EXPECT_NEAR(StudentT95(4), 2.776, 1e-9);
  EXPECT_NEAR(StudentT95(30), 2.042, 1e-9);
  EXPECT_NEAR(StudentT95(40), 2.021, 0.005);
  EXPECT_NEAR(StudentT95(120), 1.980, 0.005);
  EXPECT_NEAR(StudentT95(1000000), 1.96, 0.001);
  // Monotone decreasing toward the normal quantile.
  for (std::size_t dof = 1; dof < 200; ++dof) {
    EXPECT_GE(StudentT95(dof), StudentT95(dof + 1)) << dof;
    EXPECT_GT(StudentT95(dof), 1.9599);
  }
}

TEST(SummaryTest, FormatMeanCIWithSpread) {
  const MetricSummary s = Summarize({9.0, 10.0, 11.0});
  EXPECT_EQ(FormatMeanCI(s, 1), "10.0±2.5");  // t_{0.975,2}*1/sqrt(3)=2.48
}

}  // namespace
}  // namespace wimpy::sim
