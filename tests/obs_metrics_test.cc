// obs::MetricsRegistry tests (docs/observability.md): the simulated-time
// sampling clock, CSV export format, thread-count-invariant sweep export,
// and the Table 7 contract — the web testbed's latency decomposition must
// be reproducible from the exported metrics CSV alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "sim/replication.h"
#include "sim/scheduler.h"
#include "web/service.h"

namespace wimpy::obs {
namespace {

TEST(MetricsRegistryTest, SamplesOnTheSimulatedClock) {
  sim::Scheduler sched;
  MetricsRegistry registry;
  double level = 0;
  double total = 0;
  registry.AddGauge("level", [&level] { return level; });
  registry.AddCounter("total", [&total] { return total; });
  ASSERT_EQ(registry.probe_count(), 2u);

  sched.ScheduleAt(2.5, [&] { level = 3; total += 10; });
  sched.ScheduleAt(4.25, [&] { total += 5; });
  registry.Start(&sched, Seconds(1));  // samples at t=0 immediately
  EXPECT_TRUE(registry.running());
  sched.ScheduleAt(5.5, [&registry] { registry.Stop(); });
  sched.Run();
  EXPECT_FALSE(registry.running());
  EXPECT_EQ(sched.pending_events(), 0u);  // tick was cancellable

  registry.SampleNow();  // final post-drain sample at t=5.5

  const MetricsSeries& s = registry.series();
  const std::vector<SimTime> want_times = {0, 1, 2, 3, 4, 5, 5.5};
  ASSERT_EQ(s.times, want_times);
  ASSERT_EQ(s.names, (std::vector<std::string>{"level", "total"}));
  const std::vector<double> want_level = {0, 0, 0, 3, 3, 3, 3};
  const std::vector<double> want_total = {0, 0, 0, 10, 10, 15, 15};
  for (std::size_t i = 0; i < s.rows.size(); ++i) {
    EXPECT_EQ(s.rows[i][0], want_level[i]) << "row " << i;
    EXPECT_EQ(s.rows[i][1], want_total[i]) << "row " << i;
  }
}

TEST(MetricsRegistryTest, TakeSeriesKeepsProbesRegistered) {
  sim::Scheduler sched;
  MetricsRegistry registry;
  registry.AddGauge("g", [] { return 1.0; });
  registry.Start(&sched, Seconds(1));
  registry.Stop();
  const MetricsSeries first = registry.TakeSeries();
  ASSERT_EQ(first.rows.size(), 1u);  // the immediate Start() sample

  // The registry can keep sampling into a fresh series with the same
  // column set.
  registry.SampleNow();
  const MetricsSeries second = registry.TakeSeries();
  EXPECT_EQ(second.names, first.names);
  ASSERT_EQ(second.rows.size(), 1u);
  EXPECT_EQ(second.rows[0][0], 1.0);
}

// The Detach() lifetime guard (docs/telemetry.md): experiments sever
// probe closures when the probed components die with the testbed scope.
// Sampling through severed closures must be a loud checked error, not a
// use-after-free.
TEST(MetricsRegistryDeathTest, SamplingAfterDetachAborts) {
  sim::Scheduler sched;
  MetricsRegistry registry;
  {
    double level = 7;
    registry.AddGauge("level", [&level] { return level; });
    registry.Start(&sched, Seconds(1));
    registry.Stop();
    registry.SampleNow();  // fine: `level` is still alive here
    registry.Detach();     // `level` dies with this scope
  }
  EXPECT_DEATH(registry.SampleNow(), "detached registry");
  EXPECT_DEATH(registry.Start(&sched, Seconds(1)), "detached registry");
}

TEST(MetricsRegistryTest, DetachStopsTheSamplingClock) {
  sim::Scheduler sched;
  MetricsRegistry registry;
  registry.AddGauge("g", [] { return 1.0; });
  registry.Start(&sched, Seconds(1));
  registry.Detach();
  EXPECT_FALSE(registry.running());
  EXPECT_EQ(sched.pending_events(), 0u);  // pending tick was cancelled
}

TEST(MetricsExportTest, CsvLongFormatGolden) {
  MetricsSeries s;
  s.names = {"a", "b"};
  s.times = {0, 1.5};
  s.rows = {{0.5, 2}, {0.25, 4}};
  const std::string csv = RenderMetricsCsv({s});
  EXPECT_EQ(csv,
            "series,time_s,metric,value\n"
            "0,0,a,0.5\n"
            "0,0,b,2\n"
            "0,1.5,a,0.25\n"
            "0,1.5,b,4\n");
}

// One sweep replication: sampled gauge driven by rng-derived bumps, a
// pure function of the root Rng.
MetricsSeries MetricsReplication(int bumps, Rng& root) {
  sim::Scheduler sched;
  MetricsRegistry registry;
  double level = 0;
  registry.AddGauge("level", [&level] { return level; });
  Rng rng = root.Fork();
  for (int i = 1; i <= bumps; ++i) {
    sched.ScheduleAt(i * 0.9, [&level, &rng] {
      level += rng.Uniform(0.0, 1.0);
    });
  }
  registry.Start(&sched, Seconds(1));
  sched.ScheduleAt(bumps * 0.9, [&registry] { registry.Stop(); });
  sched.Run();
  registry.SampleNow();
  return registry.TakeSeries();
}

std::string RenderSweepCsv(int threads) {
  const std::vector<int> configs = {3, 6};
  const sim::SweepPlan plan{/*replications=*/3, threads,
                            /*base_seed=*/20160901};
  auto sweep = sim::RunSweep(configs, plan, MetricsReplication);
  std::vector<MetricsSeries> series;
  for (auto& per_config : sweep) {
    for (auto& s : per_config) series.push_back(std::move(s));
  }
  return RenderMetricsCsv(series);
}

TEST(MetricsExportTest, ExportedCsvIsByteIdenticalAtAnyThreadCount) {
  const std::string serial = RenderSweepCsv(1);
  const std::string parallel = RenderSweepCsv(4);
  EXPECT_GT(serial.size(), 100u);
  EXPECT_EQ(serial, parallel);
}

// Returns every CSV value whose metric column equals `metric`, in row
// order, parsing nothing but the exported text — the consumer's view of
// the data.
std::vector<double> CsvValues(const std::string& csv,
                              const std::string& metric) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t end = csv.find('\n', start);
    if (end == std::string::npos) end = csv.size();
    const std::string line = csv.substr(start, end - start);
    start = end + 1;
    // series,time_s,metric,value
    const std::size_t c1 = line.find(',');
    const std::size_t c2 = line.find(',', c1 + 1);
    const std::size_t c3 = line.find(',', c2 + 1);
    if (c3 == std::string::npos) continue;
    if (line.substr(c2 + 1, c3 - c2 - 1) != metric) continue;
    values.push_back(std::strtod(line.c_str() + c3 + 1, nullptr));
  }
  EXPECT_FALSE(values.empty()) << metric << " not present in CSV";
  return values;
}

double LastCsvValue(const std::string& csv, const std::string& metric) {
  const std::vector<double> values = CsvValues(csv, metric);
  return values.empty() ? 0 : values.back();
}

TEST(MetricsWebIntegrationTest, Table7DecompositionReproducibleFromCsvAlone) {
  // bench_table7_delay_decomp's contract: the final `svc.*_delay_*`
  // samples in the exported CSV equal the OpenLoopReport the table is
  // printed from, because the testbed publishes the same merged
  // OnlineStats the report collects and takes one final sample after the
  // run drains.
  web::WebTestbedConfig cfg = web::EdisonWebTestbed(4, 2);
  MetricsRegistry metrics;
  cfg.metrics = &metrics;
  web::WebExperiment exp(std::move(cfg));
  const web::OpenLoopReport report =
      exp.MeasureOpenLoop(web::HeavyMix(), 200, Seconds(8));
  ASSERT_GT(report.db_delay.count(), 100u);

  const std::string csv = RenderMetricsCsv({metrics.TakeSeries()});
  auto near = [](double got, double want) {
    // %.9g keeps ~9 significant digits through the CSV round-trip.
    EXPECT_NEAR(got, want, 1e-6 * std::abs(want) + 1e-12);
  };
  near(LastCsvValue(csv, "svc.db_delay_mean"), report.db_delay.mean());
  near(LastCsvValue(csv, "svc.db_delay_count"),
       static_cast<double>(report.db_delay.count()));
  near(LastCsvValue(csv, "svc.cache_delay_mean"),
       report.cache_delay.mean());
  near(LastCsvValue(csv, "svc.total_delay_mean"),
       report.total_delay.mean());
  near(LastCsvValue(csv, "svc.total_delay_count"),
       static_cast<double>(report.total_delay.count()));

  // The hardware probes sampled alongside are live too: the middle tier
  // burned energy over the run, and some in-run sample caught the first
  // web server's CPU busy (the final post-drain sample shows it idle).
  EXPECT_GT(LastCsvValue(csv, "svc.middle_joules"), 0.0);
  double peak_cpu = 0;
  for (double v : CsvValues(csv, "web0.cpu_busy")) {
    peak_cpu = std::max(peak_cpu, v);
  }
  EXPECT_GT(peak_cpu, 0.0);
}

}  // namespace
}  // namespace wimpy::obs
