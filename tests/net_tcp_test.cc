#include "net/tcp.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/profiles.h"
#include "sim/process.h"

namespace wimpy::net {
namespace {

class TcpTest : public ::testing::Test {
 protected:
  TcpTest() : fabric_(&sched_) {
    client_node_ = std::make_unique<hw::ServerNode>(
        &sched_, hw::DellR620Profile(), 1);
    server_node_ = std::make_unique<hw::ServerNode>(
        &sched_, hw::DellR620Profile(), 2);
    fabric_.AddNode(client_node_.get(), "room");
    fabric_.AddNode(server_node_.get(), "room");
  }

  void MakeHosts(const TcpConfig& client_cfg, const TcpConfig& server_cfg) {
    client_ = std::make_unique<TcpHost>(&fabric_, 1, client_cfg);
    server_ = std::make_unique<TcpHost>(&fabric_, 2, server_cfg);
  }

  sim::Scheduler sched_;
  Fabric fabric_;
  std::unique_ptr<hw::ServerNode> client_node_, server_node_;
  std::unique_ptr<TcpHost> client_, server_;
};

sim::Process ConnectOnce(TcpHost& client, TcpHost& server,
                         ConnectResult* out, bool keep_open = false) {
  TcpConnection conn(&client, &server);
  *out = co_await conn.Connect();
  if (!keep_open) conn.Close();
}

TEST_F(TcpTest, HandshakeTakesOneRtt) {
  MakeHosts(TcpConfig{}, TcpConfig{});
  ConnectResult result;
  sim::Spawn(sched_, ConnectOnce(*client_, *server_, &result));
  sched_.Run();
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.retries, 0);
  EXPECT_NEAR(result.connect_delay, fabric_.Rtt(1, 2), 1e-9);
}

TEST_F(TcpTest, PortExhaustionFailsFast) {
  TcpConfig tiny;
  tiny.ephemeral_ports = 0;
  MakeHosts(tiny, TcpConfig{});
  ConnectResult result;
  sim::Spawn(sched_, ConnectOnce(*client_, *server_, &result));
  sched_.Run();
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
}

TEST_F(TcpTest, BacklogOverflowTriggersExponentialBackoff) {
  TcpConfig server_cfg;
  server_cfg.listen_backlog = 0;  // every SYN is dropped
  MakeHosts(TcpConfig{}, server_cfg);
  ConnectResult result;
  sim::Spawn(sched_, ConnectOnce(*client_, *server_, &result));
  sched_.Run();
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(result.retries, 3);
  // Waited 1 + 2 + 4 = 7 s before giving up.
  EXPECT_NEAR(result.connect_delay, 7.0, 1e-6);
  EXPECT_EQ(server_->syn_drops(), 4);
}

TEST_F(TcpTest, ConnectDelaySpikesMatchBackoffSchedule) {
  // With a single-SYN drop then success, the connect delay is ~1 s + RTT;
  // with two drops ~3 s + RTT — the histogram spikes of Figure 11.
  TcpConfig server_cfg;
  server_cfg.listen_backlog = 1;
  MakeHosts(TcpConfig{}, server_cfg);
  // Occupy the single backlog slot until t = 0.5 s, so the SYN at t=0 is
  // dropped and the retransmission at t=1 succeeds.
  ASSERT_TRUE(server_->TryEnterBacklog());
  sched_.ScheduleAt(0.5, [&] { server_->LeaveBacklog(); });
  ConnectResult result;
  sim::Spawn(sched_, ConnectOnce(*client_, *server_, &result));
  sched_.Run();
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.retries, 1);
  EXPECT_NEAR(result.connect_delay, 1.0 + fabric_.Rtt(1, 2), 1e-6);
}

TEST_F(TcpTest, ConnectionSlotsReleaseOnClose) {
  MakeHosts(TcpConfig{}, TcpConfig{});
  ConnectResult r1, r2;
  sim::Spawn(sched_, ConnectOnce(*client_, *server_, &r1));
  sched_.Run();
  EXPECT_EQ(server_->connections_open(), 0);
  EXPECT_EQ(client_->ports_in_use(), 0);
  sim::Spawn(sched_, ConnectOnce(*client_, *server_, &r2));
  sched_.Run();
  EXPECT_TRUE(r2.status.ok());
}

TEST_F(TcpTest, ConnectionSlotExhaustionResets) {
  TcpConfig server_cfg;
  server_cfg.max_connections = 1;
  MakeHosts(TcpConfig{}, server_cfg);
  auto hold = [&](ConnectResult* out) -> sim::Process {
    TcpConnection conn(client_.get(), server_.get());
    *out = co_await conn.Connect();
    co_await sim::Delay(sched_, 100.0);  // hold the slot
  };
  ConnectResult r1, r2;
  sim::Spawn(sched_, hold(&r1));
  sim::Spawn(sched_, ConnectOnce(*client_, *server_, &r2));
  sched_.Run();
  EXPECT_TRUE(r1.status.ok());
  EXPECT_EQ(r2.status.code(), StatusCode::kResourceExhausted);
}

sim::Process ExchangeOnce(TcpHost& client, TcpHost& server, Bytes up,
                          Bytes down, sim::Scheduler& sched,
                          double* done_at) {
  TcpConnection conn(&client, &server);
  ConnectResult r = co_await conn.Connect();
  EXPECT_TRUE(r.status.ok());
  if (r.status.ok()) {
    co_await conn.Exchange(up, down);
    conn.Close();
    *done_at = sched.now();
  }
}

TEST_F(TcpTest, ExchangeMovesBytesBothWays) {
  MakeHosts(TcpConfig{}, TcpConfig{});
  double done_at = -1;
  sim::Spawn(sched_, ExchangeOnce(*client_, *server_, KB(1), MB(125),
                                  sched_, &done_at));
  sched_.Run();
  // Response dominates: 125 MB at 1 Gbps ~ 1 s.
  EXPECT_NEAR(done_at, 1.0, 0.01);
  EXPECT_EQ(client_node_->nic().bytes_received(), MB(125));
}

}  // namespace
}  // namespace wimpy::net
