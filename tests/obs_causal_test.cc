// Causal-tracing contract tests (docs/observability.md): trace/span id
// allocation, CausalSpan propagation and the null no-op path, name
// interning, open-track bookkeeping, span-tree reconstruction, the
// critical-path walk's tie-breaks, Perfetto flow-event rendering, and
// the --trace-summary CSV.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/critical_path.h"
#include "obs/energy.h"
#include "obs/export.h"
#include "obs/tracer.h"
#include "sim/process.h"
#include "sim/scheduler.h"

namespace wimpy::obs {
namespace {

TEST(CausalIdTest, IdsStartAtOneAndNeverRepeat) {
  Tracer tracer;
  EXPECT_EQ(tracer.NewTraceId(), 1u);
  EXPECT_EQ(tracer.NewTraceId(), 2u);
  EXPECT_EQ(tracer.NewSpanId(), 1u);
  EXPECT_EQ(tracer.NewSpanId(), 2u);
  // Trace and span counters are independent streams.
  EXPECT_EQ(tracer.NewTraceId(), 3u);
}

TEST(CausalIdTest, InternDeduplicatesWithStablePointers) {
  Tracer tracer;
  const std::string dynamic = std::string("word") + "count";
  const char* a = tracer.Intern(dynamic);
  const char* b = tracer.Intern("wordcount");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "wordcount");
  const char* c = tracer.Intern("terasort");
  EXPECT_NE(a, c);
  // Interned names survive TakeLog (detached logs keep name pointers).
  tracer.InstantAt(0.0, a, Category::kApp, 0);
  TraceLog log = tracer.TakeLog();
  EXPECT_STREQ(log.events[0].name, "wordcount");
  EXPECT_EQ(tracer.Intern("wordcount"), a);
}

TEST(CausalIdTest, InternedNamesOutliveTheTracer) {
  // The sweep idiom: the per-replication tracer dies at replication end,
  // the detached log is exported from main afterwards. The log holds a
  // keepalive reference to the intern arena, so dynamic names stay valid.
  TraceLog log;
  {
    Tracer tracer;
    const std::string dynamic = std::string("tera") + "sort";
    tracer.InstantAt(0.0, tracer.Intern(dynamic), Category::kApp, 0);
    log = tracer.TakeLog();
  }
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_STREQ(log.events[0].name, "terasort");
}

sim::Process NestedSpans(sim::Scheduler& sched, Tracer& tracer) {
  TraceHandle root;
  root.tracer = &tracer;
  root.sched = &sched;
  root.track = 7;
  root.ctx.trace_id = tracer.NewTraceId();
  CausalSpan outer(root, "outer", Category::kRequest);
  co_await sim::Delay(sched, 1.0);
  {
    CausalSpan inner(outer.handle(), "inner", Category::kRequest, 42);
    inner.Instant("tick", 5);
    co_await sim::Delay(sched, 2.0);
  }
  co_await sim::Delay(sched, 0.5);
}

TEST(CausalSpanTest, PropagatesIdentityThroughHandles) {
  sim::Scheduler sched;
  Tracer tracer;
  sim::Spawn(sched, NestedSpans(sched, tracer));
  sched.Run();

  // outer B, inner B, tick i, inner E, outer E.
  ASSERT_EQ(tracer.size(), 5u);
  const auto& ev = tracer.events();
  EXPECT_EQ(ev[0].phase, 'B');
  EXPECT_EQ(std::string_view(ev[0].name), "outer");
  EXPECT_EQ(ev[0].trace_id, 1u);
  EXPECT_EQ(ev[0].parent_id, 0u);
  const std::uint64_t outer_id = ev[0].span_id;
  EXPECT_NE(outer_id, 0u);

  EXPECT_EQ(ev[1].phase, 'B');
  EXPECT_EQ(std::string_view(ev[1].name), "inner");
  EXPECT_EQ(ev[1].time, 1.0);
  EXPECT_EQ(ev[1].trace_id, 1u);
  EXPECT_EQ(ev[1].parent_id, outer_id);
  EXPECT_EQ(ev[1].arg, 42);
  const std::uint64_t inner_id = ev[1].span_id;
  EXPECT_NE(inner_id, outer_id);

  // Instants carry the trace and the enclosing span as parent.
  EXPECT_EQ(ev[2].phase, 'i');
  EXPECT_EQ(ev[2].trace_id, 1u);
  EXPECT_EQ(ev[2].parent_id, inner_id);
  EXPECT_EQ(ev[2].span_id, 0u);

  EXPECT_EQ(ev[3].phase, 'E');
  EXPECT_EQ(ev[3].time, 3.0);
  EXPECT_EQ(ev[3].span_id, inner_id);
  EXPECT_EQ(ev[4].phase, 'E');
  EXPECT_EQ(ev[4].time, 3.5);
  EXPECT_EQ(ev[4].span_id, outer_id);

  // The inherited track rides along on every event.
  for (const TraceEvent& e : ev) EXPECT_EQ(e.track, 7);
  EXPECT_EQ(tracer.open_tracks(), 0u);
}

TEST(CausalSpanTest, NullHandleIsCompleteNoOp) {
  sim::Scheduler sched;
  Tracer tracer;
  {
    CausalSpan noop(TraceHandle{}, "x", Category::kApp);
    noop.Instant("y");
    CausalSpan child(noop.handle(), "z", Category::kApp);
    EXPECT_FALSE(static_cast<bool>(child.handle()));
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, BalancedTracksAreErasedFromOpenSet) {
  Tracer tracer;
  for (int track = 0; track < 100; ++track) {
    tracer.BeginSpanAt(0.1 * track, "s", Category::kApp, track);
    tracer.EndSpanAt(0.1 * track + 0.05, "s", Category::kApp, track);
  }
  // Every track balanced back to zero: the map must not retain 100
  // dead entries (the long-run growth bug this pins).
  EXPECT_EQ(tracer.open_tracks(), 0u);
  tracer.BeginSpanAt(11.0, "open", Category::kApp, 3);
  EXPECT_EQ(tracer.open_tracks(), 1u);
  EXPECT_EQ(tracer.open_spans(3), 1);
}

// Emits one complete causal span into `t`.
void Span(Tracer& t, const char* name, SimTime b, SimTime e,
          std::uint64_t trace, std::uint64_t span, std::uint64_t parent,
          std::int32_t track = 0) {
  t.BeginSpanAt(b, name, Category::kRequest, track,
                TraceContext{trace, span, parent});
  t.EndSpanAt(e, name, Category::kRequest, track,
              TraceContext{trace, span, parent});
}

TEST(TraceTreeTest, RebuildsNestingAndFlagsIncompleteSpans) {
  Tracer tracer;
  tracer.BeginSpanAt(0.0, "root", Category::kRequest, 0,
                     TraceContext{9, 1, 0});
  Span(tracer, "child", 1.0, 2.0, 9, 2, 1);
  // Engine-style non-causal events are ignored by the tree builder.
  tracer.InstantAt(1.5, "engine", Category::kEngine, 0);
  // The root's end is missing: horizon (max log time) closes it.
  tracer.InstantAt(4.0, "late", Category::kApp, 0, TraceContext{9, 0, 1});
  TraceLog log = tracer.TakeLog();

  const std::vector<TraceTree> trees = BuildTraceTrees(log);
  ASSERT_EQ(trees.size(), 1u);
  const TraceTree& tree = trees[0];
  EXPECT_EQ(tree.trace_id, 9u);
  EXPECT_FALSE(tree.complete);
  ASSERT_EQ(tree.spans.size(), 2u);
  const SpanRecord& root = tree.spans[tree.root];
  EXPECT_EQ(std::string_view(root.name), "root");
  EXPECT_FALSE(root.complete);
  EXPECT_EQ(root.end, 4.0);  // closed at the log horizon
  ASSERT_EQ(root.children.size(), 1u);
  const SpanRecord& child = tree.spans[root.children[0]];
  EXPECT_EQ(std::string_view(child.name), "child");
  EXPECT_TRUE(child.complete);
  ASSERT_EQ(tree.instants.size(), 1u);
  EXPECT_EQ(std::string_view(tree.instants[0].name), "late");
  EXPECT_EQ(tree.instants[0].parent_id, 1u);
}

TEST(CriticalPathTest, SequentialChildrenDecompose) {
  Tracer tracer;
  tracer.BeginSpanAt(0.0, "root", Category::kRequest, 0,
                     TraceContext{1, 1, 0});
  Span(tracer, "a", 1.0, 4.0, 1, 2, 1);
  Span(tracer, "b", 5.0, 9.0, 1, 3, 1);
  tracer.EndSpanAt(10.0, "root", Category::kRequest, 0,
                   TraceContext{1, 1, 0});
  TraceLog log = tracer.TakeLog();

  const std::vector<TraceTree> trees = BuildTraceTrees(log);
  ASSERT_EQ(trees.size(), 1u);
  const std::vector<PathSegment> path = CriticalPath(trees[0]);
  // Segments tile [root.begin, root.end] contiguously in forward order.
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front().begin, 0.0);
  EXPECT_EQ(path.back().end, 10.0);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(path[i].begin, path[i - 1].end);
  }

  const auto decomp = DecomposeCriticalPath(trees[0]);
  // Root self time: [0,1] + [4,5] + [9,10].
  EXPECT_DOUBLE_EQ(decomp.at("root"), 3.0);
  EXPECT_DOUBLE_EQ(decomp.at("a"), 3.0);
  EXPECT_DOUBLE_EQ(decomp.at("b"), 4.0);
}

TEST(CriticalPathTest, OverlappingChildrenChargeTheLaterFinisher) {
  Tracer tracer;
  tracer.BeginSpanAt(0.0, "root", Category::kRequest, 0,
                     TraceContext{1, 1, 0});
  Span(tracer, "a", 1.0, 6.0, 1, 2, 1);
  Span(tracer, "b", 4.0, 9.0, 1, 3, 1);
  tracer.EndSpanAt(10.0, "root", Category::kRequest, 0,
                   TraceContext{1, 1, 0});
  TraceLog log = tracer.TakeLog();

  const std::vector<TraceTree> trees = BuildTraceTrees(log);
  ASSERT_EQ(trees.size(), 1u);
  const auto decomp = DecomposeCriticalPath(trees[0]);
  // Backward from 10: root waits on b until 9, b owns (4,9]; the walk
  // resumes at b.begin=4 where a (still running) owns (1,4]; root keeps
  // [0,1] and [9,10].
  EXPECT_DOUBLE_EQ(decomp.at("root"), 2.0);
  EXPECT_DOUBLE_EQ(decomp.at("b"), 5.0);
  EXPECT_DOUBLE_EQ(decomp.at("a"), 3.0);
}

std::size_t CountOccurrences(const std::string& doc,
                             const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = doc.find(needle); pos != std::string::npos;
       pos = doc.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(FlowEventTest, CrossTrackChildrenGetFlowArrows) {
  Tracer tracer;
  tracer.BeginSpanAt(0.0, "job", Category::kApp, 0, TraceContext{1, 1, 0});
  // Same-track child: no flow arrow.
  Span(tracer, "local", 0.5, 0.8, 1, 2, 1, /*track=*/0);
  // Cross-track child: flow start on the parent's track, finish (bound
  // to the enclosing slice) on the child's, both at the child's begin.
  Span(tracer, "attempt", 1.0, 3.0, 1, 3, 1, /*track=*/5);
  tracer.EndSpanAt(4.0, "job", Category::kApp, 0, TraceContext{1, 1, 0});
  TraceLog log = tracer.TakeLog();

  const std::string doc = RenderChromeTrace({log});
  EXPECT_EQ(CountOccurrences(doc, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(CountOccurrences(doc, "\"ph\":\"f\""), 1u);
  EXPECT_EQ(CountOccurrences(doc, "\"id\":\"p0.s3\""), 2u);
  EXPECT_NE(doc.find("\"ph\":\"s\",\"ts\":1000000,\"pid\":0,\"tid\":0"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"ph\":\"f\",\"ts\":1000000,\"pid\":0,\"tid\":5,"
                     "\"bp\":\"e\""),
            std::string::npos)
      << doc;
  // Causal ids ride in the args of the span events themselves.
  EXPECT_NE(doc.find("\"trace\":1,\"span\":3,\"parent\":1"),
            std::string::npos);
}

TEST(TraceSummaryTest, CsvJoinsTreesWithLedgerJoules) {
  Tracer tracer;
  tracer.BeginSpanAt(0.5, "query", Category::kRequest, 0,
                     TraceContext{1, 1, 0});
  Span(tracer, "get", 0.75, 1.0, 1, 2, 1);
  tracer.EndSpanAt(1.5, "query", Category::kRequest, 0,
                   TraceContext{1, 1, 0});
  Span(tracer, "query", 2.0, 2.25, 2, 3, 0);
  TraceLog log = tracer.TakeLog();

  EnergyLedger ledger;
  ledger.rows.push_back(SpanEnergyRow{1, 1, "query", 0, 0.5});
  ledger.rows.push_back(SpanEnergyRow{1, 2, "get", 0, 0.25});
  ledger.rows.push_back(SpanEnergyRow{2, 3, "query", 0, 0.125});

  const std::string csv = RenderTraceSummaryCsv({log}, {ledger});
  const std::string expected =
      "series,trace_id,root,begin_s,latency_s,spans,complete,joules\n"
      "0,1,query,0.5,1,2,1,0.75\n"
      "0,2,query,2,0.25,1,1,0.125\n";
  EXPECT_EQ(csv, expected);

  // No ledger: the joules column degrades to 0 instead of misaligning.
  const std::string no_energy = RenderTraceSummaryCsv({log}, {});
  EXPECT_NE(no_energy.find("0,1,query,0.5,1,2,1,0\n"), std::string::npos);
}

}  // namespace
}  // namespace wimpy::obs
