#include "core/proportionality.h"

#include <gtest/gtest.h>

#include "core/powerdown.h"
#include "hw/profiles.h"

namespace wimpy::core {
namespace {

TEST(ProportionalityTest, DellHasNarrowPowerSpectrum) {
  // §1: "current high-end servers are not energy-proportional and have
  // narrow power spectrum between idling and full utilization".
  const auto report = MeasureProportionality(hw::DellR620Profile(),
                                             {0.0, 0.5, 1.0});
  EXPECT_NEAR(report.dynamic_range, (109.0 - 52.0) / 109.0, 1e-9);
  EXPECT_LT(report.dynamic_range, 0.55);
  // At zero load, more than half of busy power is already burning.
  EXPECT_GT(report.curve.front().normalized, 0.45);
}

TEST(ProportionalityTest, CurveIsMonotoneAndBounded) {
  const auto report = MeasureProportionality(hw::EdisonProfile());
  double prev = -1;
  for (const auto& point : report.curve) {
    EXPECT_GE(point.power, report.idle_power - 1e-9);
    EXPECT_LE(point.power, report.busy_power + 1e-9);
    EXPECT_GE(point.power, prev - 1e-9);  // more load, more power
    prev = point.power;
  }
}

TEST(ProportionalityTest, EpCoefficientRanksPlatforms) {
  // Neither platform is proportional, but the shape metric must be
  // internally consistent: gap in [0, 0.5], EP in [0, 1].
  for (const auto& profile :
       {hw::EdisonProfile(), hw::DellR620Profile()}) {
    const auto report =
        MeasureProportionality(profile, {0.0, 0.25, 0.5, 0.75, 1.0});
    EXPECT_GE(report.proportionality_gap, 0.0) << profile.name;
    EXPECT_LE(report.proportionality_gap, 0.5) << profile.name;
    EXPECT_GE(report.ep_coefficient, 0.0) << profile.name;
    EXPECT_LE(report.ep_coefficient, 1.0) << profile.name;
  }
}

TEST(PowerDownTest, StrategiesCoverTheJobAndSaveEnergy) {
  const auto outcomes = EvaluatePowerDown(
      PaperJob::kWordCount2, /*edison_cluster=*/true, /*total_nodes=*/8,
      /*covering_nodes=*/4, Hours(1));
  ASSERT_EQ(outcomes.size(), 3u);
  const auto& always_on = outcomes[0];
  const auto& ais = outcomes[1];
  const auto& cs = outcomes[2];
  EXPECT_EQ(always_on.strategy, "always-on");
  // Both power-down strategies beat paying idle power for the rest of the
  // hour.
  EXPECT_LT(ais.cluster_joules, always_on.cluster_joules);
  EXPECT_LT(cs.cluster_joules, always_on.cluster_joules);
  // CS runs narrower, so it takes longer than AIS.
  EXPECT_GT(cs.makespan, ais.makespan);
  EXPECT_EQ(cs.active_nodes, 4);
  EXPECT_GT(ais.work_done_per_joule, 0);
}

TEST(PowerDownTest, CoveringNodesClamped) {
  const auto outcomes = EvaluatePowerDown(PaperJob::kWordCount2, true, 4,
                                          99, Hours(1));
  EXPECT_EQ(outcomes[2].active_nodes, 4);
}

}  // namespace
}  // namespace wimpy::core
