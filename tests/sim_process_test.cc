#include "sim/process.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"
#include "sim/wait_queue.h"

namespace wimpy::sim {
namespace {

Process Sleeper(Scheduler& sched, Duration d, double* woke_at) {
  co_await Delay(sched, d);
  *woke_at = sched.now();
}

TEST(ProcessTest, DelayAdvancesVirtualTime) {
  Scheduler sched;
  double woke_at = -1;
  Spawn(sched, Sleeper(sched, 2.5, &woke_at));
  sched.Run();
  EXPECT_EQ(woke_at, 2.5);
}

Process MultiSleep(Scheduler& sched, std::vector<double>* times) {
  for (int i = 0; i < 3; ++i) {
    co_await Delay(sched, 1.0);
    times->push_back(sched.now());
  }
}

TEST(ProcessTest, SequentialDelaysAccumulate) {
  Scheduler sched;
  std::vector<double> times;
  Spawn(sched, MultiSleep(sched, &times));
  sched.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(ProcessTest, JoinWaitsForCompletion) {
  Scheduler sched;
  double woke_at = -1;
  double joined_at = -1;
  auto ref = Spawn(sched, Sleeper(sched, 4.0, &woke_at));
  auto joiner = [](Scheduler& s, ProcessRef target,
                   double* t) -> Process {
    co_await target.Join();
    *t = s.now();
  };
  Spawn(sched, joiner(sched, ref, &joined_at));
  sched.Run();
  EXPECT_EQ(joined_at, 4.0);
  EXPECT_TRUE(ref.done());
}

TEST(ProcessTest, JoinAfterCompletionResumesImmediately) {
  Scheduler sched;
  double woke_at = -1;
  auto ref = Spawn(sched, Sleeper(sched, 1.0, &woke_at));
  sched.Run();
  ASSERT_TRUE(ref.done());
  double joined_at = -1;
  auto joiner = [](Scheduler& s, ProcessRef target,
                   double* t) -> Process {
    co_await target.Join();
    *t = s.now();
  };
  Spawn(sched, joiner(sched, ref, &joined_at));
  sched.Run();
  EXPECT_EQ(joined_at, 1.0);  // clock did not advance further
}

TEST(ProcessTest, MultipleJoinersAllWake) {
  Scheduler sched;
  double woke_at = -1;
  auto ref = Spawn(sched, Sleeper(sched, 2.0, &woke_at));
  int joined = 0;
  auto joiner = [](ProcessRef target, int* n) -> Process {
    co_await target.Join();
    ++*n;
  };
  for (int i = 0; i < 5; ++i) Spawn(sched, joiner(ref, &joined));
  sched.Run();
  EXPECT_EQ(joined, 5);
}

TEST(ProcessTest, UnspawnedProcessDestroysCleanly) {
  Scheduler sched;
  double woke_at = -1;
  {
    Process p = Sleeper(sched, 1.0, &woke_at);
    // never spawned
  }
  sched.Run();
  EXPECT_EQ(woke_at, -1);
}

TEST(ProcessTest, SpawnDoesNotRunInline) {
  Scheduler sched;
  double woke_at = -1;
  Spawn(sched, Sleeper(sched, 0.0, &woke_at));
  EXPECT_EQ(woke_at, -1);  // runs only once the scheduler is pumped
  sched.Run();
  EXPECT_EQ(woke_at, 0.0);
}

Process Producer(Scheduler& sched, WaitQueue<int>& queue, int n) {
  for (int i = 0; i < n; ++i) {
    co_await Delay(sched, 1.0);
    queue.Push(i);
  }
}

Process Consumer(WaitQueue<int>& queue, int n, std::vector<int>* out,
                 Scheduler& sched, std::vector<double>* at) {
  for (int i = 0; i < n; ++i) {
    int v = co_await queue.Get();
    out->push_back(v);
    at->push_back(sched.now());
  }
}

TEST(ProcessTest, WaitQueueDeliversInOrderAcrossTime) {
  Scheduler sched;
  WaitQueue<int> queue(&sched);
  std::vector<int> got;
  std::vector<double> at;
  Spawn(sched, Consumer(queue, 3, &got, sched, &at));
  Spawn(sched, Producer(sched, queue, 3));
  sched.Run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(at, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(ProcessTest, WaitQueueBuffersWhenNoConsumer) {
  Scheduler sched;
  WaitQueue<int> queue(&sched);
  queue.Push(7);
  queue.Push(8);
  EXPECT_EQ(queue.size(), 2u);
  std::vector<int> got;
  std::vector<double> at;
  Spawn(sched, Consumer(queue, 2, &got, sched, &at));
  sched.Run();
  EXPECT_EQ(got, (std::vector<int>{7, 8}));
  EXPECT_EQ(queue.peak_depth(), 2u);
}

TEST(ProcessTest, WaitQueueMultipleConsumersFifo) {
  Scheduler sched;
  WaitQueue<int> queue(&sched);
  std::vector<int> got_a, got_b;
  std::vector<double> at;
  Spawn(sched, Consumer(queue, 1, &got_a, sched, &at));
  Spawn(sched, Consumer(queue, 1, &got_b, sched, &at));
  sched.ScheduleAt(1.0, [&] {
    queue.Push(100);
    queue.Push(200);
  });
  sched.Run();
  EXPECT_EQ(got_a, (std::vector<int>{100}));  // first waiter gets first item
  EXPECT_EQ(got_b, (std::vector<int>{200}));
}

TEST(ProcessTest, TryGetDoesNotBlock) {
  Scheduler sched;
  WaitQueue<int> queue(&sched);
  EXPECT_FALSE(queue.TryGet().has_value());
  queue.Push(1);
  auto v = queue.TryGet();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
}

}  // namespace
}  // namespace wimpy::sim
