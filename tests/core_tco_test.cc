#include "core/tco.h"

#include <gtest/gtest.h>

#include "hw/profiles.h"

namespace wimpy::core {
namespace {

TEST(TcoTest, MeanPowerInterpolates) {
  TcoParams p;
  p.peak_power = 109;
  p.idle_power = 52;
  EXPECT_DOUBLE_EQ(MeanPower(p, 0.0), 52.0);
  EXPECT_DOUBLE_EQ(MeanPower(p, 1.0), 109.0);
  EXPECT_DOUBLE_EQ(MeanPower(p, 0.5), 80.5);
}

TEST(TcoTest, ElectricityCostFormula) {
  TcoParams p = TcoParamsFor(hw::DellR620Profile());
  // One Dell at idle for 3 years: 52 W * 26280 h = 1366.56 kWh -> $136.66.
  EXPECT_NEAR(ElectricityCostUsd(p, 1, 0.0), 136.66, 0.1);
}

TEST(TcoTest, PurchaseDominatesForEdison) {
  TcoParams edison = TcoParamsFor(hw::EdisonProfile());
  const double tco = TcoUsd(edison, 35, 1.0);
  // 35 x $120 = $4200 purchase; electricity at full load ~ $155.
  EXPECT_NEAR(tco, 4200 + 35 * 1.68 * 26.280 * 0.1, 1.0);
  EXPECT_GT(4200.0 / tco, 0.95);
}

TEST(TcoTest, PaperTable10RowsReproduce) {
  const auto scenarios = PaperTable10Scenarios();
  ASSERT_EQ(scenarios.size(), 4u);

  // Paper Table 10 (Dell, Edison): web low (7948.7, 4329.5);
  // web high (8236.8, 4346.1); big data low (5348.2, 4352.4);
  // big data high (5495.0, 4352.4).
  const double expected[][2] = {{7948.7, 4329.5},
                                {8236.8, 4346.1},
                                {5348.2, 4352.4},
                                {5495.0, 4352.4}};
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const TcoComparison cmp = Compare(scenarios[i]);
    EXPECT_NEAR(cmp.a_total_usd, expected[i][0], expected[i][0] * 0.01)
        << scenarios[i].name;
    EXPECT_NEAR(cmp.b_total_usd, expected[i][1], expected[i][1] * 0.01)
        << scenarios[i].name;
  }
}

TEST(TcoTest, HeadlineSavingsUpTo47Percent) {
  double best = 0;
  for (const auto& scenario : PaperTable10Scenarios()) {
    best = std::max(best, Compare(scenario).savings_fraction);
  }
  EXPECT_NEAR(best, 0.47, 0.02);
}

TEST(TcoTest, SavingsMonotonicInDellUtilisation) {
  const TcoParams edison = TcoParamsFor(hw::EdisonProfile());
  const TcoParams dell = TcoParamsFor(hw::DellR620Profile());
  double prev = -1;
  for (double u = 0.1; u <= 0.9; u += 0.2) {
    TcoScenario s{"sweep", dell, 3, u, edison, 35, u};
    const double savings = Compare(s).savings_fraction;
    EXPECT_GT(savings, prev);
    prev = savings;
  }
}

}  // namespace
}  // namespace wimpy::core
