#include <gtest/gtest.h>

#include "hw/profiles.h"
#include "kv/experiment.h"

namespace wimpy::kv {
namespace {

KvExperimentConfig EdisonKv(int nodes) {
  KvExperimentConfig config;
  config.node_profile = hw::EdisonProfile();
  config.node_count = nodes;
  return config;
}

TEST(KvExperimentTest, ServesOfferedLoadWellBelowSaturation) {
  KvExperiment exp(EdisonKv(8));
  const KvReport report = exp.Measure(500, Seconds(10));
  EXPECT_NEAR(report.achieved_qps, 500, 75);
  EXPECT_GT(report.mean_latency, 0);
  EXPECT_LT(report.mean_latency, Milliseconds(50));
  EXPECT_GT(report.p99_latency, report.mean_latency);
  EXPECT_GT(report.store_power, 8 * 1.3);   // at least near idle floor
  EXPECT_GT(report.queries_per_joule, 10);
}

TEST(KvExperimentTest, MissesPayStorageLatency) {
  KvExperimentConfig all_hit = EdisonKv(4);
  all_hit.store.ram_hit_ratio = 1.0;
  KvExperimentConfig all_miss = EdisonKv(4);
  all_miss.store.ram_hit_ratio = 0.0;
  const KvReport hit = KvExperiment(all_hit).Measure(200, Seconds(8));
  const KvReport miss = KvExperiment(all_miss).Measure(200, Seconds(8));
  // A microSD random read costs ~7 ms; RAM hits are far cheaper.
  EXPECT_GT(miss.mean_latency, hit.mean_latency + Milliseconds(5));
}

TEST(KvExperimentTest, PutsStressTheLogNotRandomIo) {
  KvExperimentConfig puts_only = EdisonKv(4);
  puts_only.get_fraction = 0.0;
  const KvReport report = KvExperiment(puts_only).Measure(200, Seconds(8));
  EXPECT_NEAR(report.achieved_qps, 200, 40);
  // Sequential buffered appends keep puts fast despite the slow card.
  EXPECT_LT(report.mean_latency, Milliseconds(20));
}

TEST(KvExperimentTest, FindPeakStopsAtSaturation) {
  KvExperiment exp(EdisonKv(4));
  const KvReport peak = exp.FindPeak(250, 64000);
  EXPECT_GT(peak.achieved_qps, 250);
  // 4 Edison nodes cannot do 64k lookups/s with 30% SD-card misses.
  EXPECT_LT(peak.achieved_qps, 64000);
}

TEST(KvExperimentTest, ReplicationRaisesPutCost) {
  KvExperimentConfig r1 = EdisonKv(6);
  r1.get_fraction = 0.0;  // puts only
  KvExperimentConfig r2 = r1;
  r2.replication = 2;
  const KvReport single = KvExperiment(r1).Measure(150, Seconds(8));
  const KvReport chained = KvExperiment(r2).Measure(150, Seconds(8));
  // The chain hop adds a wire transfer plus a second append.
  EXPECT_GT(chained.mean_latency, single.mean_latency * 1.3);
  EXPECT_NEAR(chained.achieved_qps, single.achieved_qps, 40);
}

TEST(KvExperimentTest, FailoverKeepsServingWithReplication) {
  KvExperimentConfig config = EdisonKv(8);
  config.replication = 2;
  KvExperiment exp(config);
  const KvReport report = exp.MeasureWithFailover(400, /*failed_nodes=*/2,
                                                  Seconds(12));
  // The ring routes around the two dead nodes: no dropped queries and
  // near-target throughput.
  EXPECT_EQ(report.error_rate, 0.0);
  EXPECT_NEAR(report.achieved_qps, 400, 60);
}

TEST(KvExperimentTest, AllNodesFailedDropsQueries) {
  KvExperimentConfig config = EdisonKv(2);
  KvExperiment exp(config);
  // Clamped to n-1 = 1 failed; with only one survivor the ring still
  // serves everything.
  const KvReport report = exp.MeasureWithFailover(100, 99, Seconds(8));
  EXPECT_EQ(report.error_rate, 0.0);
  EXPECT_GT(report.achieved_qps, 50);
}

TEST(KvExperimentTest, EdisonBeatsDellOnQueriesPerJoule) {
  // The FAWN headline, at equal offered load per deployment.
  KvExperimentConfig edison = EdisonKv(8);
  KvExperimentConfig dell = edison;
  dell.node_profile = hw::DellR620Profile();
  dell.node_count = 1;  // capacity-comparable per the paper's 10x rules
  const KvReport e = KvExperiment(edison).Measure(1500, Seconds(10));
  const KvReport d = KvExperiment(dell).Measure(1500, Seconds(10));
  EXPECT_NEAR(e.achieved_qps, d.achieved_qps, 300);
  EXPECT_GT(e.queries_per_joule, 2.0 * d.queries_per_joule);
}

}  // namespace
}  // namespace wimpy::kv
