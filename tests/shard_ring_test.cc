// Consistent-hash ring properties (shard/ring.h): map determinism and
// insertion-order independence (the "same seed + same node set =>
// byte-identical shard map" contract), ownership invariants, and the
// consistent-hashing churn bound — one node joining or leaving an
// N-node ring moves only ~K/N of the K shards.
#include "shard/ring.h"

#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace wimpy::shard {
namespace {

Ring MakeRing(const RingConfig& config, const std::vector<int>& nodes) {
  Ring ring(config);
  for (int n : nodes) ring.AddNode(n);
  return ring;
}

bool SameMap(const Ring& a, const Ring& b) {
  if (a.shards() != b.shards()) return false;
  for (int s = 0; s < a.shards(); ++s) {
    if (a.Preference(s) != b.Preference(s)) return false;
  }
  return true;
}

TEST(ShardRingTest, MapIndependentOfInsertionOrder) {
  RingConfig config;
  config.replication = 3;
  const Ring forward = MakeRing(config, {0, 1, 2, 3, 4, 5, 6, 7});
  const Ring backward = MakeRing(config, {7, 6, 5, 4, 3, 2, 1, 0});
  const Ring shuffled = MakeRing(config, {3, 7, 0, 5, 1, 6, 2, 4});
  EXPECT_TRUE(SameMap(forward, backward));
  EXPECT_TRUE(SameMap(forward, shuffled));
}

TEST(ShardRingTest, RebuildAfterChurnMatchesFreshRing) {
  RingConfig config;
  config.replication = 2;
  Ring churned = MakeRing(config, {0, 1, 2, 3, 4, 9});
  churned.RemoveNode(9);
  churned.AddNode(5);
  const Ring fresh = MakeRing(config, {0, 1, 2, 3, 4, 5});
  EXPECT_TRUE(SameMap(churned, fresh));
}

TEST(ShardRingTest, EveryShardOwnedByDistinctChain) {
  RingConfig config;
  config.replication = 3;
  const Ring ring = MakeRing(config, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  EXPECT_EQ(ring.chain_length(), 3);
  for (int s = 0; s < ring.shards(); ++s) {
    const std::vector<int>& pref = ring.Preference(s);
    // The preference list covers every member exactly once.
    ASSERT_EQ(pref.size(), 12u);
    std::set<int> distinct(pref.begin(), pref.end());
    EXPECT_EQ(distinct.size(), pref.size());
    EXPECT_EQ(ring.PrimaryOf(s), pref[0]);
  }
}

TEST(ShardRingTest, ChainLengthClampsToMembership) {
  RingConfig config;
  config.replication = 3;
  const Ring ring = MakeRing(config, {0, 1});
  EXPECT_EQ(ring.chain_length(), 2);
}

TEST(ShardRingTest, ShardOfUsesTopBits) {
  RingConfig config;
  config.shards = 256;
  const Ring ring = MakeRing(config, {0});
  EXPECT_EQ(ring.ShardOf(0), 0);
  EXPECT_EQ(ring.ShardOf(~0ULL), 255);
  EXPECT_EQ(ring.ShardOf(1ULL << 56), 1);
}

TEST(ShardRingTest, JoinMovesAboutOneNthOfShards) {
  RingConfig config;
  config.replication = 1;
  const std::vector<int> nodes = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  const Ring before = MakeRing(config, nodes);
  Ring after = MakeRing(config, nodes);
  after.AddNode(12);
  const std::vector<int> moved = Ring::MovedPrimaries(before, after);
  // Ideal: K/N = 256/13 ~ 20 shards change primary. Ketama with 64
  // vnodes is lumpy, so accept a generous band — the property under test
  // is "a small fraction moved, not a reshuffle".
  const double ideal = 256.0 / 13.0;
  EXPECT_GE(moved.size(), static_cast<std::size_t>(ideal / 3));
  EXPECT_LE(moved.size(), static_cast<std::size_t>(ideal * 3));
  // Every moved shard moved *to* the joiner, nowhere else.
  for (int s : moved) EXPECT_EQ(after.PrimaryOf(s), 12);
}

TEST(ShardRingTest, LeaveMovesOnlyTheLeaversShards) {
  RingConfig config;
  config.replication = 1;
  const std::vector<int> nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  const Ring before = MakeRing(config, nodes);
  Ring after = MakeRing(config, nodes);
  after.RemoveNode(3);
  const std::vector<int> moved = Ring::MovedPrimaries(before, after);
  std::size_t owned_before = 0;
  for (int s = 0; s < before.shards(); ++s) {
    if (before.PrimaryOf(s) == 3) ++owned_before;
  }
  // Exactly the shards node 3 owned change primary; everything else is
  // untouched (the consistent-hashing minimal-disruption property).
  EXPECT_EQ(moved.size(), owned_before);
  for (int s : moved) {
    EXPECT_EQ(before.PrimaryOf(s), 3);
    EXPECT_NE(after.PrimaryOf(s), 3);
  }
}

TEST(ShardRingTest, SaltReshapesTheMap) {
  RingConfig a;
  RingConfig b;
  b.salt = 0xDEADBEEFULL;
  const std::vector<int> nodes = {0, 1, 2, 3, 4, 5};
  const Ring ring_a = MakeRing(a, nodes);
  const Ring ring_b = MakeRing(b, nodes);
  EXPECT_FALSE(SameMap(ring_a, ring_b));
}

TEST(ShardRingTest, BalanceIsReasonable) {
  RingConfig config;
  const Ring ring = MakeRing(config, {0, 1, 2, 3, 4, 5, 6, 7});
  std::vector<int> owned(8, 0);
  for (int s = 0; s < ring.shards(); ++s) {
    ++owned[static_cast<std::size_t>(ring.PrimaryOf(s))];
  }
  // 256 shards over 8 nodes: ideal 32 each; 64 vnodes keeps every node
  // within a ~3x band of ideal (the paper-era ketama expectation).
  for (int n = 0; n < 8; ++n) {
    EXPECT_GE(owned[static_cast<std::size_t>(n)], 10) << "node " << n;
    EXPECT_LE(owned[static_cast<std::size_t>(n)], 96) << "node " << n;
  }
}

}  // namespace
}  // namespace wimpy::shard
