#include <gtest/gtest.h>

#include <vector>

#include "hw/cpu.h"
#include "hw/memory.h"
#include "hw/nic.h"
#include "hw/profiles.h"
#include "hw/storage.h"
#include "sim/process.h"
#include "sim/scheduler.h"

namespace wimpy::hw {
namespace {

sim::Process RunCompute(CpuModel& cpu, double minstr, sim::Scheduler& sched,
                        double* done_at) {
  co_await cpu.Execute(minstr);
  *done_at = sched.now();
}

TEST(CpuModelTest, SingleThreadSpeedMatchesDmips) {
  sim::Scheduler sched;
  CpuModel cpu(&sched, EdisonProfile().cpu);
  double done_at = -1;
  // 632.3 Minstr at 632.3 DMIPS -> exactly 1 second.
  sim::Spawn(sched, RunCompute(cpu, 632.3, sched, &done_at));
  sched.Run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(CpuModelTest, TwoTasksUseBothCores) {
  sim::Scheduler sched;
  CpuModel cpu(&sched, EdisonProfile().cpu);
  std::vector<double> done(2, -1);
  for (int i = 0; i < 2; ++i) {
    sim::Spawn(sched, RunCompute(cpu, 632.3, sched, &done[i]));
  }
  sched.Run();
  // Two cores -> both finish in 1 s, not 2 s.
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 1.0, 1e-9);
}

TEST(CpuModelTest, OversubscriptionSharesFairly) {
  sim::Scheduler sched;
  CpuModel cpu(&sched, EdisonProfile().cpu);
  std::vector<double> done(4, -1);
  for (int i = 0; i < 4; ++i) {
    sim::Spawn(sched, RunCompute(cpu, 632.3, sched, &done[i]));
  }
  sched.Run();
  // 4 tasks on 2 cores -> 2 s each.
  for (double t : done) EXPECT_NEAR(t, 2.0, 1e-9);
}

TEST(CpuModelTest, DellRunsSameWorkFaster) {
  sim::Scheduler schedE, schedD;
  CpuModel edison(&schedE, EdisonProfile().cpu);
  CpuModel dell(&schedD, DellR620Profile().cpu);
  double edison_done = -1, dell_done = -1;
  const double work = 10000.0;
  sim::Spawn(schedE, RunCompute(edison, work, schedE, &edison_done));
  sim::Spawn(schedD, RunCompute(dell, work, schedD, &dell_done));
  schedE.Run();
  schedD.Run();
  EXPECT_NEAR(edison_done / dell_done, 18.0, 0.1);  // single-thread gap
}

sim::Process RunTransfer(MemoryModel& mem, Bytes n, sim::Scheduler& sched,
                         double* done_at) {
  co_await mem.Transfer(n);
  *done_at = sched.now();
}

TEST(MemoryModelTest, SingleThreadBandwidthBelowPeak) {
  sim::Scheduler sched;
  MemoryModel mem(&sched, EdisonProfile().memory);
  double done_at = -1;
  sim::Spawn(sched, RunTransfer(mem, GB(1.1), sched, &done_at));
  sched.Run();
  // One stream is capped at 1.1 GB/s even though the bus can do 2.2.
  EXPECT_NEAR(done_at, GB(1.1) / GBps(1.1), 1e-6);
}

TEST(MemoryModelTest, TwoThreadsSaturateBus) {
  sim::Scheduler sched;
  MemoryModel mem(&sched, EdisonProfile().memory);
  std::vector<double> done(2, -1);
  for (int i = 0; i < 2; ++i) {
    sim::Spawn(sched, RunTransfer(mem, GB(1.1), sched, &done[i]));
  }
  sched.Run();
  // Two streams at 1.1 GB/s each = full 2.2 GB/s; same time as one stream.
  EXPECT_NEAR(done[0], GB(1.1) / GBps(1.1), 1e-6);
}

TEST(MemoryModelTest, CapacityReservations) {
  sim::Scheduler sched;
  MemoryModel mem(&sched, EdisonProfile().memory);
  EXPECT_TRUE(mem.TryReserve(MB(600)));
  EXPECT_NEAR(mem.used_fraction(), 0.6, 0.01);
  EXPECT_FALSE(mem.TryReserve(MB(600)));  // would exceed 1 GB
  mem.Free(MB(600));
  EXPECT_EQ(mem.used(), 0);
  EXPECT_TRUE(mem.TryReserve(MB(1000)));
}

sim::Process BlockingReserve(MemoryModel& mem, Bytes n, sim::Scheduler& sched,
                             double* granted_at) {
  co_await mem.Reserve(n);
  *granted_at = sched.now();
}

TEST(MemoryModelTest, ReserveBlocksUntilFreed) {
  sim::Scheduler sched;
  MemoryModel mem(&sched, EdisonProfile().memory);
  ASSERT_TRUE(mem.TryReserve(MB(900)));
  double granted_at = -1;
  sim::Spawn(sched, BlockingReserve(mem, MB(500), sched, &granted_at));
  sched.ScheduleAt(5.0, [&] { mem.Free(MB(900)); });
  sched.Run();
  EXPECT_EQ(granted_at, 5.0);
}

sim::Process DoRead(StorageDevice& dev, Bytes n, bool buffered,
                    sim::Scheduler& sched, double* done_at) {
  co_await dev.Read(n, buffered);
  *done_at = sched.now();
}

TEST(StorageDeviceTest, DirectReadAtMeasuredRate) {
  sim::Scheduler sched;
  StorageDevice dev(&sched, EdisonProfile().storage);
  double done_at = -1;
  sim::Spawn(sched, DoRead(dev, MB(195), /*buffered=*/false, sched,
                           &done_at));
  sched.Run();
  EXPECT_NEAR(done_at, 10.0, 1e-6);  // 195 MB at 19.5 MB/s
}

TEST(StorageDeviceTest, BufferedReadMuchFaster) {
  sim::Scheduler sched;
  StorageDevice dev(&sched, EdisonProfile().storage);
  double direct = -1, buffered = -1;
  sim::Spawn(sched, DoRead(dev, MB(100), false, sched, &direct));
  sched.Run();
  sim::Scheduler sched2;
  StorageDevice dev2(&sched2, EdisonProfile().storage);
  sim::Spawn(sched2, DoRead(dev2, MB(100), true, sched2, &buffered));
  sched2.Run();
  EXPECT_NEAR(direct / buffered, 737.0 / 19.5, 0.01);
}

TEST(StorageDeviceTest, ConcurrentOpsShareChannel) {
  sim::Scheduler sched;
  StorageDevice dev(&sched, EdisonProfile().storage);
  std::vector<double> done(2, -1);
  for (int i = 0; i < 2; ++i) {
    sim::Spawn(sched, DoRead(dev, MB(195), false, sched, &done[i]));
  }
  sched.Run();
  // Two equal reads share the device -> each takes twice as long.
  EXPECT_NEAR(done[0], 20.0, 1e-6);
  EXPECT_NEAR(done[1], 20.0, 1e-6);
}

sim::Process DoRandomRead(StorageDevice& dev, sim::Scheduler& sched,
                          double* done_at) {
  co_await dev.RandomRead(KiB(4));
  *done_at = sched.now();
}

TEST(StorageDeviceTest, RandomReadPaysLatency) {
  sim::Scheduler sched;
  StorageDevice dev(&sched, EdisonProfile().storage);
  double done_at = -1;
  sim::Spawn(sched, DoRandomRead(dev, sched, &done_at));
  sched.Run();
  EXPECT_GT(done_at, Milliseconds(7.0));
  EXPECT_LT(done_at, Milliseconds(7.5));
}

TEST(StorageDeviceTest, ByteAccounting) {
  sim::Scheduler sched;
  StorageDevice dev(&sched, DellR620Profile().storage);
  double done_at = -1;
  sim::Spawn(sched, DoRead(dev, MB(10), true, sched, &done_at));
  sched.Run();
  EXPECT_EQ(dev.bytes_read(), MB(10));
  EXPECT_EQ(dev.bytes_written(), 0);
}

TEST(NicModelTest, DirectionsAreIndependent) {
  sim::Scheduler sched;
  NicModel nic(&sched, EdisonProfile().nic);
  double tx_done = -1, rx_done = -1;
  auto drive = [&](sim::FairShareServer& dir, double* done) -> sim::Process {
    co_await dir.Serve(static_cast<double>(MB(12.5)));
    *done = sched.now();
  };
  sim::Spawn(sched, drive(nic.tx(), &tx_done));
  sim::Spawn(sched, drive(nic.rx(), &rx_done));
  sched.Run();
  // 12.5 MB at 100 Mbps (12.5 MB/s) = 1 s in each direction concurrently.
  EXPECT_NEAR(tx_done, 1.0, 1e-6);
  EXPECT_NEAR(rx_done, 1.0, 1e-6);
}

}  // namespace
}  // namespace wimpy::hw
