// Parameterised scalability and determinism properties of the MapReduce
// stack — including a regression sweep for the reducer-slot deadlock that
// once froze mid-sized clusters (reducers starving maps of containers).
#include <gtest/gtest.h>

#include "mapreduce/jobs.h"
#include "mapreduce/testbed.h"

namespace wimpy::mapreduce {
namespace {

JobSpec ScaledWordCount(const MrClusterConfig& config) {
  JobSpec spec = WordCountJob(config);
  spec.input_files = 30;
  spec.input_bytes = MB(120);
  spec.reducers = TotalVcores(config);  // stress reducer-slot pressure
  spec.reduce_slowstart = 0.3;          // early reducers, worst case
  return spec;
}

class MrScaleProperty : public ::testing::TestWithParam<int> {};

TEST_P(MrScaleProperty, JobCompletesAtEveryClusterSize) {
  const int slaves = GetParam();
  MrTestbed testbed(EdisonMrCluster(slaves));
  JobSpec spec = ScaledWordCount(testbed.config());
  LoadInputFor(spec, &testbed);
  // Bound the event budget: a scheduling deadlock would otherwise hang
  // the suite in the allocator's polling loop.
  const MrRunResult result = testbed.RunJob(spec);
  EXPECT_GT(result.job.elapsed, 0);
  EXPECT_LT(result.job.elapsed, 50000.0);
  EXPECT_EQ(result.job.map_tasks, 30);
  EXPECT_GT(result.slave_joules, 0);
}

TEST_P(MrScaleProperty, MoreSlavesNeverSlower) {
  const int slaves = GetParam();
  if (slaves < 4) return;  // compare each size against its half
  auto run = [](int n) {
    MrTestbed testbed(EdisonMrCluster(n));
    JobSpec spec = ScaledWordCount(testbed.config());
    LoadInputFor(spec, &testbed);
    return testbed.RunJob(spec).job.elapsed;
  };
  const Duration full = run(slaves);
  const Duration half = run(slaves / 2);
  EXPECT_LE(full, half * 1.10);  // 10% tolerance for placement noise
}

INSTANTIATE_TEST_SUITE_P(Sizes, MrScaleProperty,
                         ::testing::Values(2, 4, 8, 17, 35));

TEST(MrDeterminismTest, SameSeedSameResult) {
  auto run = [] {
    MrTestbed testbed(EdisonMrCluster(8));
    JobSpec spec = ScaledWordCount(testbed.config());
    LoadInputFor(spec, &testbed);
    return testbed.RunJob(spec);
  };
  const MrRunResult a = run();
  const MrRunResult b = run();
  EXPECT_EQ(a.job.elapsed, b.job.elapsed);
  EXPECT_EQ(a.slave_joules, b.slave_joules);
  EXPECT_EQ(a.job.data_local_fraction, b.job.data_local_fraction);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
}

TEST(MrDeterminismTest, DifferentSeedDifferentPlacement) {
  auto run = [](std::uint64_t seed) {
    MrClusterConfig config = EdisonMrCluster(8);
    config.seed = seed;
    MrTestbed testbed(config);
    JobSpec spec = ScaledWordCount(testbed.config());
    LoadInputFor(spec, &testbed);
    return testbed.RunJob(spec).job.elapsed;
  };
  // Not a strict requirement, but across several seeds at least one run
  // should differ (placement cursor starts at a random node).
  const Duration base = run(1);
  bool any_different = false;
  for (std::uint64_t seed = 2; seed <= 5; ++seed) {
    any_different = any_different || run(seed) != base;
  }
  EXPECT_TRUE(any_different);
}

TEST(MrStragglerTest, ThrottledNodeStretchesTheJobSublinearly) {
  auto run = [](int throttled) {
    MrClusterConfig config = EdisonMrCluster(8);
    config.throttled_slaves = throttled;
    config.throttle_factor = 0.5;
    MrTestbed testbed(config);
    JobSpec spec = ScaledWordCount(testbed.config());
    LoadInputFor(spec, &testbed);
    return testbed.RunJob(spec).job.elapsed;
  };
  const Duration healthy = run(0);
  const Duration one_slow = run(1);
  const Duration half_slow = run(4);
  // Without speculative execution, one-wave phases (one reducer per
  // vcore) are gated by the slowest node: a single 50%-speed node caps
  // the stretch at ~2x regardless of how many more are throttled. Real
  // Hadoop counters exactly this with speculative re-execution.
  EXPECT_GT(one_slow, healthy * 1.05);
  EXPECT_LT(one_slow, healthy * 2.2);
  EXPECT_GE(half_slow, one_slow * 0.98);
  EXPECT_LT(half_slow, healthy * 2.4);
}

TEST(MrSpeculationTest, DuplicatesRescueMapStragglers) {
  auto run = [](bool speculative, int* attempts) {
    MrClusterConfig config = EdisonMrCluster(8);
    config.throttled_slaves = 1;
    config.throttle_factor = 0.25;  // a severely degraded card
    MrTestbed testbed(config);
    JobSpec spec = ScaledWordCount(testbed.config());
    spec.reducers = 4;  // keep the reduce phase off the critical path
    spec.speculative_execution = speculative;
    LoadInputFor(spec, &testbed);
    const MrRunResult result = testbed.RunJob(spec);
    if (attempts != nullptr) {
      // attempts is reported per-job; surface via map task count delta is
      // not visible in MrRunResult, so only check runtime here.
    }
    return result.job.elapsed;
  };
  const Duration without = run(false, nullptr);
  const Duration with = run(true, nullptr);
  // Speculation cuts the straggler tail materially.
  EXPECT_LT(with, without * 0.9);
}

TEST(MrSpeculationTest, NoOpOnHomogeneousCluster) {
  auto run = [](bool speculative) {
    MrTestbed testbed(EdisonMrCluster(8));
    JobSpec spec = ScaledWordCount(testbed.config());
    spec.speculative_execution = speculative;
    LoadInputFor(spec, &testbed);
    return testbed.RunJob(spec).job.elapsed;
  };
  const Duration off = run(false);
  const Duration on = run(true);
  // With no stragglers, speculation changes nothing meaningful.
  EXPECT_NEAR(on, off, off * 0.1);
}

TEST(MrReducerPressureTest, ReducersCannotStarveMaps) {
  // The historical deadlock shape: reducers == total slots, slowstart
  // early, many maps outstanding.
  MrTestbed testbed(EdisonMrCluster(17));
  JobSpec spec = WordCountJob(testbed.config());
  spec.input_files = 60;
  spec.input_bytes = MB(240);
  spec.reducers = TotalVcores(testbed.config());
  spec.reduce_slowstart = 0.1;
  spec.reduce_container_mem = MB(300);
  LoadInputFor(spec, &testbed);
  const MrRunResult result = testbed.RunJob(spec);
  EXPECT_GT(result.job.elapsed, 0);
  EXPECT_LT(result.job.elapsed, 100000.0);
}

}  // namespace
}  // namespace wimpy::mapreduce
