#include "core/capacity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiments.h"
#include "hw/profiles.h"

namespace wimpy::core {
namespace {

TEST(CapacityTest, Table2ReplacementRatios) {
  const auto r = ComputeReplacement(hw::EdisonProfile(),
                                    hw::DellR620Profile());
  // §3.1: 12 by CPU nameplate, 16 by RAM, 10 by NIC -> 16 to replace one.
  EXPECT_NEAR(r.by_cpu_nameplate, 12.0, 0.01);
  EXPECT_NEAR(r.by_memory, 16.0, 0.01);
  EXPECT_NEAR(r.by_nic, 10.0, 0.01);
  EXPECT_EQ(r.nodes_to_replace_one, 16);
}

TEST(CapacityTest, MeasuredCpuChangesTheAnswer) {
  const auto r = ComputeReplacement(hw::EdisonProfile(),
                                    hw::DellR620Profile());
  // §7: the measured ~100x CPU gap dwarfs the nameplate 12x.
  EXPECT_GT(r.by_cpu_measured, 90.0);
  EXPECT_EQ(r.nodes_to_replace_one_measured,
            static_cast<int>(std::ceil(r.by_cpu_measured)));
}

TEST(CapacityTest, RackDensityAboutTwoHundred) {
  const auto d = EdisonRackDensity();
  EXPECT_NEAR(d.modules_per_1u, 200, 10);
}

TEST(CapacityTest, SelfReplacementIsOne) {
  const auto r = ComputeReplacement(hw::DellR620Profile(),
                                    hw::DellR620Profile());
  EXPECT_EQ(r.nodes_to_replace_one, 1);
}

TEST(ExperimentsTest, PaperJobCatalog) {
  EXPECT_EQ(AllPaperJobs().size(), 6u);
  EXPECT_EQ(PaperJobName(PaperJob::kWordCount2), "wordcount2");
  const auto spec =
      SpecFor(PaperJob::kTeraSort, mapreduce::EdisonMrCluster(35));
  EXPECT_EQ(spec.name, "terasort");
}

TEST(ExperimentsTest, EnergyEfficiencyRatio) {
  // Table 8 wordcount: Edison 17670 J vs Dell 40214 J -> 2.28x.
  EXPECT_NEAR(EnergyEfficiencyRatio(17670, 40214), 2.28, 0.01);
  EXPECT_EQ(EnergyEfficiencyRatio(0, 100), 0.0);
}

TEST(ExperimentsTest, MeanSpeedupPerDoubling) {
  // Perfect linear scaling -> 2.0 per doubling.
  EXPECT_NEAR(MeanSpeedupPerDoubling(
                  {{4, 800.0}, {8, 400.0}, {16, 200.0}, {32, 100.0}}),
              2.0, 1e-9);
  // No scaling -> 1.0.
  EXPECT_NEAR(MeanSpeedupPerDoubling({{4, 100.0}, {8, 100.0}}), 1.0, 1e-9);
  // Non-power-of-two ladder (35 vs 17) still normalises per doubling.
  const double s =
      MeanSpeedupPerDoubling({{17, 1065.0}, {35, 310.0}});
  EXPECT_GT(s, 2.0);  // super-linear step in the paper's wordcount ladder
  EXPECT_EQ(MeanSpeedupPerDoubling({{4, 100.0}}), 0.0);
}

}  // namespace
}  // namespace wimpy::core
