// obs::Tracer unit and contract tests (docs/observability.md): the
// disabled no-op path, span nesting, the scheduler engine hook, the
// byte-identical-at-any---threads determinism guarantee, and a
// line-oriented schema check of the Chrome trace-event JSON exporter.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "obs/export.h"
#include "obs/tracer.h"
#include "sim/process.h"
#include "sim/replication.h"
#include "sim/scheduler.h"

namespace wimpy::obs {
namespace {

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(/*enabled=*/false);
  tracer.InstantAt(1.0, "a", Category::kApp, 0, 7);
  tracer.BeginSpanAt(2.0, "b", Category::kRequest, 3);
  tracer.EndSpanAt(3.0, "b", Category::kRequest, 3);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.open_spans(3), 0);

  // Re-enabling resumes recording on the same instance.
  tracer.set_enabled(true);
  tracer.InstantAt(4.0, "c", Category::kApp, 0);
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(TracerTest, SpanNestingIsTrackedPerTrack) {
  Tracer tracer;
  tracer.BeginSpanAt(0.0, "outer", Category::kRequest, 1);
  tracer.BeginSpanAt(0.5, "inner", Category::kRequest, 1);
  tracer.BeginSpanAt(0.7, "other", Category::kTask, 2);
  EXPECT_EQ(tracer.open_spans(1), 2);
  EXPECT_EQ(tracer.open_spans(2), 1);
  EXPECT_EQ(tracer.open_spans(99), 0);

  tracer.EndSpanAt(1.0, "inner", Category::kRequest, 1);
  EXPECT_EQ(tracer.open_spans(1), 1);
  tracer.EndSpanAt(2.0, "outer", Category::kRequest, 1);
  tracer.EndSpanAt(2.5, "other", Category::kTask, 2);
  EXPECT_EQ(tracer.open_spans(1), 0);
  EXPECT_EQ(tracer.open_spans(2), 0);

  // Phases recorded in stream order with tracer-local increasing seq.
  ASSERT_EQ(tracer.size(), 6u);
  const std::string phases = {
      tracer.events()[0].phase, tracer.events()[1].phase,
      tracer.events()[2].phase, tracer.events()[3].phase,
      tracer.events()[4].phase, tracer.events()[5].phase};
  EXPECT_EQ(phases, "BBBEEE");
  for (std::size_t i = 1; i < tracer.size(); ++i) {
    EXPECT_GT(tracer.events()[i].seq, tracer.events()[i - 1].seq);
  }
}

sim::Process SpannedWork(sim::Scheduler& sched, Tracer& tracer) {
  ScopedSpan span(&tracer, &sched, "work", Category::kApp, 5, 11);
  co_await sim::Delay(sched, 2.5);
}

TEST(TracerTest, ScopedSpanEndsAtDestructionTimeAcrossCoAwait) {
  sim::Scheduler sched;
  Tracer tracer;
  sim::Spawn(sched, SpannedWork(sched, tracer));
  sched.Run();

  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.events()[0].phase, 'B');
  EXPECT_EQ(tracer.events()[0].time, 0.0);
  EXPECT_EQ(tracer.events()[0].arg, 11);
  EXPECT_EQ(tracer.events()[1].phase, 'E');
  EXPECT_EQ(tracer.events()[1].time, 2.5);
  EXPECT_EQ(tracer.open_spans(5), 0);

  // A null-tracer guard is a complete no-op.
  { ScopedSpan noop(nullptr, &sched, "x", Category::kApp, 1); }
  EXPECT_EQ(tracer.size(), 2u);
}

TEST(TracerTest, EngineHookRecordsEveryExecutedEvent) {
  sim::Scheduler sched;
  Tracer tracer;
  tracer.AttachEngineHook(&sched);
  for (int i = 0; i < 5; ++i) {
    sched.ScheduleAt(1.0 + i, [&sched] {
      sched.ScheduleAfter(0.25, [] {});  // nested: also hooked
    });
  }
  sched.Run();

  EXPECT_EQ(tracer.size(), sched.executed_events());
  // seq is the engine's schedule-order number: unique per event, and
  // execution time never decreases along the stream.
  std::set<std::uint64_t> seqs;
  SimTime prev_time = 0;
  for (const TraceEvent& e : tracer.events()) {
    EXPECT_EQ(e.category, Category::kEngine);
    EXPECT_EQ(e.phase, 'i');
    EXPECT_TRUE(seqs.insert(e.seq).second) << "duplicate seq " << e.seq;
    EXPECT_GE(e.time, prev_time);
    prev_time = e.time;
  }

  // Detaching stops recording without disturbing the scheduler.
  const std::size_t before = tracer.size();
  tracer.DetachEngineHook();
  sched.ScheduleAfter(1.0, [] {});
  sched.Run();
  EXPECT_EQ(tracer.size(), before);
}

TEST(TracerTest, EngineHookDetachesOnTracerDestruction) {
  sim::Scheduler sched;
  {
    Tracer tracer;
    tracer.AttachEngineHook(&sched);
    sched.ScheduleAt(1.0, [] {});
    sched.Run();
    EXPECT_EQ(tracer.size(), 1u);
  }
  // The destroyed tracer restored the null hook; executing more events
  // must not touch freed memory.
  sched.ScheduleAfter(1.0, [] {});
  sched.Run();
  EXPECT_EQ(sched.executed_events(), 2u);
}

// One sweep replication: a small deterministic simulation whose trace
// (instants and spans on several tracks) depends only on the root Rng.
TraceLog TraceReplication(int events, Rng& root) {
  sim::Scheduler sched;
  auto tracer = std::make_unique<Tracer>();
  Rng rng = root.Fork();
  for (int i = 0; i < events; ++i) {
    const SimTime at = rng.Uniform(0.0, 10.0);
    const std::int32_t track = i % 3;
    sched.ScheduleAt(at, [&sched, t = tracer.get(), track, i] {
      t->BeginSpanAt(sched.now(), "op", Category::kApp, track, i);
      t->InstantAt(sched.now(), "tick", Category::kApp, track, i);
      t->EndSpanAt(sched.now(), "op", Category::kApp, track, i);
    });
  }
  sched.Run();
  return tracer->TakeLog();
}

std::string RenderSweepTrace(int threads) {
  const std::vector<int> configs = {4, 9};
  const sim::SweepPlan plan{/*replications=*/3, threads,
                            /*base_seed=*/20160901};
  auto sweep = sim::RunSweep(configs, plan, TraceReplication);
  std::vector<TraceLog> logs;
  for (auto& per_config : sweep) {
    for (auto& log : per_config) logs.push_back(std::move(log));
  }
  return RenderChromeTrace(logs);
}

TEST(TracerTest, ExportedTraceIsByteIdenticalAtAnyThreadCount) {
  const std::string serial = RenderSweepTrace(1);
  const std::string parallel = RenderSweepTrace(4);
  EXPECT_GT(serial.size(), 100u);
  EXPECT_EQ(serial, parallel);
}

// --- Chrome trace-event JSON schema -----------------------------------

std::vector<std::string> SplitLines(const std::string& doc) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < doc.size()) {
    std::size_t end = doc.find('\n', start);
    if (end == std::string::npos) end = doc.size();
    lines.push_back(doc.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

double NumberAfter(const std::string& line, const std::string& key) {
  const std::size_t pos = line.find(key);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0;
  return std::stod(line.substr(pos + key.size()));
}

TEST(TracerExportTest, ChromeTraceSchemaHoldsLineByLine) {
  sim::Scheduler sched;
  Tracer tracer;
  tracer.BeginSpanAt(0.0, "req", Category::kRequest, 1, 3);
  tracer.InstantAt(0.001, "syn_retry", Category::kNet, 1);
  tracer.EndSpanAt(0.0025, "req", Category::kRequest, 1, 3);
  tracer.InstantAt(0.004, "tick", Category::kApp, 2);
  TraceLog a = tracer.TakeLog();
  tracer.InstantAt(0.5, "tick", Category::kApp, 0);
  TraceLog b = tracer.TakeLog();

  const std::string doc = RenderChromeTrace({a, b});
  const std::vector<std::string> lines = SplitLines(doc);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines.front(), "{\"traceEvents\":[");
  EXPECT_EQ(lines.back(), "]}");

  // Every event line carries the required keys; `ts` is monotonically
  // non-decreasing per (pid, tid) track.
  std::map<std::pair<int, int>, double> last_ts;
  std::size_t event_lines = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    const std::string& line = lines[i];
    ++event_lines;
    EXPECT_NE(line.find("\"ph\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"name\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"ts\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"cat\":\""), std::string::npos) << line;
    if (line.find("\"ph\":\"i\"") != std::string::npos) {
      // Instant scope is required for Perfetto to render the tick.
      EXPECT_NE(line.find("\"s\":\"t\""), std::string::npos) << line;
    }
    const int pid = static_cast<int>(NumberAfter(line, "\"pid\":"));
    const int tid = static_cast<int>(NumberAfter(line, "\"tid\":"));
    const double ts = NumberAfter(line, "\"ts\":");
    const auto key = std::make_pair(pid, tid);
    const auto it = last_ts.find(key);
    if (it != last_ts.end()) EXPECT_GE(ts, it->second) << line;
    last_ts[key] = ts;
  }
  EXPECT_EQ(event_lines, a.events.size() + b.events.size());

  // ts is simulated microseconds: 0.0025 s -> 2500 us on pid 0, and the
  // second log's events land on pid 1.
  EXPECT_NE(doc.find("\"ts\":2500,\"pid\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":500000,\"pid\":1"), std::string::npos);
}

TEST(TracerExportTest, NamesAreJsonEscaped) {
  Tracer tracer;
  tracer.InstantAt(0.0, "quote\"back\\slash", Category::kApp, 0);
  TraceLog log = tracer.TakeLog();
  const std::string doc = RenderChromeTrace({log});
  EXPECT_NE(doc.find("quote\\\"back\\\\slash"), std::string::npos);
}

}  // namespace
}  // namespace wimpy::obs
