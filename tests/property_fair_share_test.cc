// Property-based tests (parameterised sweeps) for the fair-share server —
// the primitive every hardware model rests on. Invariants checked across
// a grid of capacities, per-job caps and workloads:
//   * conservation: total work served equals total demand submitted;
//   * completion-time lower bounds: no job finishes faster than
//     demand/per_job_cap or than aggregate demand/capacity allows;
//   * determinism: identical runs produce identical completion traces.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"
#include "sim/fair_share.h"
#include "sim/process.h"
#include "sim/scheduler.h"

namespace wimpy::sim {
namespace {

struct FairShareCase {
  double capacity;
  double per_job_cap;
  int jobs;
  std::uint64_t seed;
};

class FairShareProperty
    : public ::testing::TestWithParam<FairShareCase> {};

sim::Process RunJob(FairShareServer& server, double demand,
                    Scheduler& sched, double start_delay, double* done_at) {
  co_await Delay(sched, start_delay);
  co_await server.Serve(demand);
  *done_at = sched.now();
}

std::vector<double> RunWorkload(const FairShareCase& c,
                                double* total_demand_out,
                                double* total_served_out) {
  Scheduler sched;
  FairShareServer server(&sched, c.capacity, c.per_job_cap);
  Rng rng(c.seed);
  std::vector<double> done(c.jobs, -1);
  std::vector<double> demands(c.jobs);
  double total_demand = 0;
  for (int i = 0; i < c.jobs; ++i) {
    demands[i] = rng.Uniform(0.5, 20.0);
    total_demand += demands[i];
    const double start = rng.Uniform(0.0, 5.0);
    Spawn(sched, RunJob(server, demands[i], sched, start, &done[i]));
  }
  sched.Run();
  if (total_demand_out != nullptr) *total_demand_out = total_demand;
  if (total_served_out != nullptr) {
    *total_served_out = server.total_work_served();
  }
  return done;
}

TEST_P(FairShareProperty, AllJobsComplete) {
  const auto done = RunWorkload(GetParam(), nullptr, nullptr);
  for (double t : done) EXPECT_GE(t, 0.0);
}

TEST_P(FairShareProperty, WorkConservation) {
  double demand = 0, served = 0;
  RunWorkload(GetParam(), &demand, &served);
  EXPECT_NEAR(served, demand, demand * 1e-6);
}

TEST_P(FairShareProperty, PerJobCapIsALowerBoundOnLatency) {
  const FairShareCase c = GetParam();
  Scheduler sched;
  FairShareServer server(&sched, c.capacity, c.per_job_cap);
  Rng rng(c.seed);
  struct JobRecord {
    double demand;
    double start;
    double done = -1;
  };
  std::vector<JobRecord> records(c.jobs);
  for (int i = 0; i < c.jobs; ++i) {
    records[i].demand = rng.Uniform(0.5, 20.0);
    records[i].start = rng.Uniform(0.0, 5.0);
    Spawn(sched, RunJob(server, records[i].demand, sched,
                        records[i].start, &records[i].done));
  }
  sched.Run();
  const double cap =
      c.per_job_cap > 0 ? std::min(c.per_job_cap, c.capacity) : c.capacity;
  for (const auto& r : records) {
    EXPECT_GE(r.done - r.start, r.demand / cap - 1e-9);
  }
}

TEST_P(FairShareProperty, DeterministicAcrossRuns) {
  const auto a = RunWorkload(GetParam(), nullptr, nullptr);
  const auto b = RunWorkload(GetParam(), nullptr, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(FairShareProperty, AggregateCapacityBound) {
  const FairShareCase c = GetParam();
  double demand = 0, served = 0;
  const auto done = RunWorkload(c, &demand, &served);
  double last = 0;
  for (double t : done) last = std::max(last, t);
  // All work cannot finish faster than the capacity allows (arrivals span
  // [0, 5], so allow that grace).
  EXPECT_GE(last + 1e-9, demand / c.capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FairShareProperty,
    ::testing::Values(
        FairShareCase{10.0, 0.0, 1, 1}, FairShareCase{10.0, 0.0, 7, 2},
        FairShareCase{10.0, 1.0, 16, 3}, FairShareCase{100.0, 10.0, 40, 4},
        FairShareCase{1.0, 0.25, 9, 5}, FairShareCase{1264.6, 632.3, 25, 6},
        FairShareCase{126351.0, 11383.0, 60, 7},
        FairShareCase{5.0, 5.0, 100, 8}));

// Regression: a large aggregate service counter (multi-gigabyte NIC
// transfers) followed by tiny demands used to live-lock the completion
// event — the residue exceeded the job tolerance but was below one
// representable step of simulated time. Bound the event budget so a
// regression fails instead of hanging.
TEST(FairShareRegression, TinyDemandsAfterHugeCounterTerminate) {
  Scheduler sched;
  // Dell NIC: 125 MB/s.
  FairShareServer server(&sched, 1.25e8, 1.25e8);
  int completed = 0;
  auto run = [&](double demand) -> sim::Process {
    co_await server.Serve(demand);
    ++completed;
  };
  // Grow the counter: 5 GB of concurrent flows (counter stays large while
  // jobs overlap), then a burst of 200-byte sends.
  Spawn(sched, run(5e9));
  for (int i = 0; i < 200; ++i) {
    sched.ScheduleAt(1.0 + 0.1 * i, [&, i] {
      Spawn(sched, run(200.0 + i));
    });
  }
  const std::size_t executed =
      sched.Run(std::numeric_limits<SimTime>::infinity(), 200000);
  EXPECT_LT(executed, 200000u) << "event budget exhausted: livelock";
  EXPECT_EQ(completed, 201);
  EXPECT_EQ(server.active_jobs(), 0u);
}

}  // namespace
}  // namespace wimpy::sim
