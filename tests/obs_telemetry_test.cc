// Online telemetry plane (obs/telemetry.h; docs/telemetry.md): windowed
// rollups on the simulated clock, the live-query == exported-CSV
// recomputation contract, threshold and multi-window burn-rate alert
// rules, thread-count determinism of the exports, the disabled-plane
// no-op path, the SLO stream glue, and the node-health score.
#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "load/openloop.h"
#include "obs/export.h"
#include "obs/sketch.h"
#include "obs/tracer.h"
#include "sim/replication.h"
#include "sim/scheduler.h"

namespace wimpy::obs {
namespace {

// --- post-hoc recomputation from exported rows ----------------------------
//
// Mirrors Rollup::Query bucket-for-bucket over the exported TelemetrySeries
// (what RenderTelemetryCsv prints): fold count/sum/min/max/integral oldest
// to newest, rebuild the window sketch from the sparse .b<idx> rows, clamp
// quantiles with the exported min/max. `grid` is the full tick-time grid
// (from an instrument that is never empty — here a gauge probe), because
// empty buckets export no rows but still widen the window.

struct ExportedBucket {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::pair<int, std::uint64_t>> sketch;  // (bucket idx, count)
};

std::map<SimTime, ExportedBucket> BucketsOf(const TelemetrySeries& series,
                                            const std::string& name) {
  std::map<SimTime, ExportedBucket> out;
  const std::string prefix = name + ".";
  for (const TelemetryRow& row : series.rows) {
    if (row.metric.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string field = row.metric.substr(prefix.size());
    ExportedBucket& b = out[row.time];
    if (field == "count") {
      b.count = static_cast<std::uint64_t>(row.value);
    } else if (field == "sum") {
      b.sum = row.value;
    } else if (field == "min") {
      b.min = row.value;
    } else if (field == "max") {
      b.max = row.value;
    } else if (field[0] == 'b') {
      b.sketch.emplace_back(std::stoi(field.substr(1)),
                            static_cast<std::uint64_t>(row.value));
    }
  }
  return out;
}

RollupResult Recompute(const TelemetrySeries& series, const std::string& name,
                       const std::vector<SimTime>& grid, Duration window,
                       Duration slide, bool has_sketch) {
  const std::map<SimTime, ExportedBucket> buckets = BucketsOf(series, name);
  RollupResult r;
  r.has_sketch = has_sketch;
  long k = std::lround(window / slide);
  if (k < 1) k = 1;
  const std::size_t n = std::min(static_cast<std::size_t>(k), grid.size());
  r.window = static_cast<double>(n) * slide;
  if (n == 0) return r;
  HdrSketch merged;
  bool first = true;
  for (std::size_t i = grid.size() - n; i < grid.size(); ++i) {
    const auto it = buckets.find(grid[i]);
    if (it == buckets.end()) continue;  // empty bucket: exported no rows
    const ExportedBucket& b = it->second;
    for (const auto& [index, count] : b.sketch) {
      merged.AddBucketCount(index, count);
    }
    if (first) {
      r.min = b.min;
      r.max = b.max;
      first = false;
    } else {
      if (b.min < r.min) r.min = b.min;
      if (b.max > r.max) r.max = b.max;
    }
    r.count += b.count;
    r.sum += b.sum;
    r.integral += (b.sum / static_cast<double>(b.count)) * slide;
  }
  if (r.window > 0.0) r.rate = static_cast<double>(r.count) / r.window;
  if (r.count > 0) r.mean = r.sum / static_cast<double>(r.count);
  if (has_sketch && merged.count() > 0) {
    r.p50 = std::clamp(merged.Quantile(0.50), r.min, r.max);
    r.p90 = std::clamp(merged.Quantile(0.90), r.min, r.max);
    r.p99 = std::clamp(merged.Quantile(0.99), r.min, r.max);
  }
  return r;
}

void ExpectSameResult(const RollupResult& live, const RollupResult& redone) {
  EXPECT_EQ(live.window, redone.window);
  EXPECT_EQ(live.count, redone.count);
  EXPECT_EQ(live.sum, redone.sum);
  EXPECT_EQ(live.min, redone.min);
  EXPECT_EQ(live.max, redone.max);
  EXPECT_EQ(live.rate, redone.rate);
  EXPECT_EQ(live.mean, redone.mean);
  EXPECT_EQ(live.integral, redone.integral);
  EXPECT_EQ(live.p50, redone.p50);
  EXPECT_EQ(live.p90, redone.p90);
  EXPECT_EQ(live.p99, redone.p99);
}

// The acceptance contract: a mid-run (here end-of-run) live Query is
// reproducible exactly — same doubles, not approximately — from the
// exported rows alone.
TEST(TelemetryTest, LiveQueryMatchesExportRecomputation) {
  sim::Scheduler sched;
  Telemetry telemetry;
  Counter total = telemetry.AddCounter("req.total");
  Histogram lat = telemetry.AddHistogram("req.lat");
  telemetry.AddProbe("clock", [&sched] { return sched.now(); });

  Rng rng(5);
  // Offset avoids ever colliding with tick instants, so event-vs-tick
  // ordering is never in play.
  for (int i = 0; i < 190; ++i) {
    sched.ScheduleAt(0.05 * i + 0.003, [&total, &lat, &rng] {
      total.Add();
      lat.Record(rng.Exponential(400.0));
    });
  }
  sched.ScheduleAt(10.0, [&telemetry] { telemetry.Stop(); });
  telemetry.Start(&sched);
  sched.Run();
  EXPECT_EQ(telemetry.ticks(), 10u);

  const TelemetrySeries& series = telemetry.series();
  // Tick-time grid from the probe: gauges observe every tick, so their
  // buckets are never empty and enumerate every close edge.
  std::vector<SimTime> grid;
  for (const auto& [time, bucket] : BucketsOf(series, "clock")) {
    grid.push_back(time);
  }
  ASSERT_EQ(grid.size(), 10u);

  const Duration slide = telemetry.config().slide;
  for (Duration window : {1.0, 2.0, 5.0, 7.0, 100.0}) {
    ExpectSameResult(
        telemetry.Query("req.total", window),
        Recompute(series, "req.total", grid, window, slide, false));
    ExpectSameResult(telemetry.Query("req.lat", window),
                     Recompute(series, "req.lat", grid, window, slide, true));
    ExpectSameResult(telemetry.Query("clock", window),
                     Recompute(series, "clock", grid, window, slide, false));
  }
  // Unknown instruments answer empty, never crash (rules are wired from
  // config strings).
  EXPECT_EQ(telemetry.Query("no.such", 5.0).count, 0u);
  EXPECT_EQ(telemetry.QueryAgg("no.such", Agg::kRate, 5.0), 0.0);
}

TEST(TelemetryTest, StopClosesBucketDueExactlyNow) {
  // The experiment idiom: the window-end ScheduleAt lambda runs before
  // the tick scheduled for the same instant (older sequence number) and
  // stops telemetry — the full final bucket must not be lost.
  sim::Scheduler sched;
  Telemetry telemetry;
  Counter c = telemetry.AddCounter("c");
  sched.ScheduleAt(1.5, [&c] { c.Add(3.0); });
  sched.ScheduleAt(2.0, [&telemetry] { telemetry.Stop(); });
  telemetry.Start(&sched);
  sched.Run();
  EXPECT_EQ(telemetry.ticks(), 2u);
  EXPECT_EQ(telemetry.Query("c", 1.0).sum, 3.0);

  // A stop mid-bucket closes nothing extra.
  sim::Scheduler sched2;
  Telemetry telemetry2;
  Counter c2 = telemetry2.AddCounter("c");
  sched2.ScheduleAt(2.5, [&telemetry2] { telemetry2.Stop(); });
  sched2.ScheduleAt(2.25, [&c2] { c2.Add(); });
  telemetry2.Start(&sched2);
  sched2.Run();
  EXPECT_EQ(telemetry2.ticks(), 2u);
  // The 2.25 observation sits in the never-closed open bucket.
  EXPECT_EQ(telemetry2.Query("c", 10.0).count, 0u);
}

TEST(TelemetryTest, ThresholdRuleFiresOnRisingEdgeOnly) {
  sim::Scheduler sched;
  Telemetry telemetry;
  Counter errors = telemetry.AddCounter("err");
  ThresholdRule rule;
  rule.name = "err_spike";
  rule.metric = "err";
  rule.agg = Agg::kRate;
  rule.threshold = 5.0;
  rule.window = 1.0;
  telemetry.AddThresholdRule(rule);

  auto burst = [&](double t) {
    for (int i = 0; i < 10; ++i) {
      sched.ScheduleAt(t + 0.01 * (i + 1), [&errors] { errors.Add(); });
    }
  };
  burst(1.0);  // bucket [1,2): hot at tick 2
  burst(2.0);  // still hot at tick 3: no re-fire
  // bucket [3,4) quiet: clears at tick 4
  burst(4.0);  // hot again at tick 5: second fire
  sched.ScheduleAt(6.0, [&telemetry] { telemetry.Stop(); });
  telemetry.Start(&sched);
  sched.Run();

  ASSERT_EQ(telemetry.alerts().size(), 2u);
  EXPECT_EQ(telemetry.alerts()[0].time, 2.0);
  EXPECT_EQ(telemetry.alerts()[0].rule, "err_spike");
  EXPECT_EQ(telemetry.alerts()[0].value, 10.0);
  EXPECT_EQ(telemetry.alerts()[1].time, 5.0);
}

TEST(TelemetryTest, BurnRateNeedsBothWindowsAndRecomputes) {
  sim::Scheduler sched;
  Tracer tracer;
  Telemetry telemetry;
  Counter good = telemetry.AddCounter("slo.good");
  Counter total = telemetry.AddCounter("slo.total");
  BurnRateRule rule;
  rule.name = "slo_burn";
  rule.good_metric = "slo.good";
  rule.total_metric = "slo.total";
  rule.slo_target = 0.9;  // 10% budget
  rule.burn_threshold = 1.0;
  rule.short_window = 1.0;
  rule.long_window = 3.0;
  telemetry.AddBurnRateRule(rule);

  // Four healthy seconds, then four fully-burning ones. The long window
  // at tick 5 spans buckets [2,5): 20 good / 30 total -> burn 10/3; the
  // short window is bucket [4,5): 0/10 -> burn 10. First tick where BOTH
  // exceed 1.0 is t=5.
  for (int s = 0; s < 8; ++s) {
    const bool healthy = s < 4;
    for (int i = 0; i < 10; ++i) {
      sched.ScheduleAt(s + 0.01 * (i + 1), [&good, &total, healthy] {
        total.Add();
        if (healthy) good.Add();
      });
    }
  }
  sched.ScheduleAt(8.0, [&telemetry] { telemetry.Stop(); });
  telemetry.Start(&sched, &tracer);
  sched.Run();

  ASSERT_EQ(telemetry.alerts().size(), 1u);
  const Alert& alert = telemetry.alerts()[0];
  EXPECT_EQ(alert.time, 5.0);
  EXPECT_EQ(alert.rule, "slo_burn");
  // Recompute the fired value from window sums the way the rule does.
  const double budget = 1.0 - rule.slo_target;
  const double short_burn =
      (1.0 - telemetry.Query("slo.good", 1.0).sum /
                 telemetry.Query("slo.total", 1.0).sum) /
      budget;
  EXPECT_EQ(alert.value, short_burn);
  // 1/0.1 in doubles is 10 +- 1 ulp, so the literal pin is ulp-tolerant.
  EXPECT_DOUBLE_EQ(alert.value, 10.0);
  // The firing also landed on the trace as a kAlert instant.
  const TraceLog log = tracer.TakeLog();
  int alert_instants = 0;
  for (const TraceEvent& e : log.events) {
    if (e.category == Category::kAlert) {
      ++alert_instants;
      EXPECT_EQ(e.time, 5.0);
    }
  }
  EXPECT_EQ(alert_instants, 1);
}

// One simulated cell for the determinism sweep: a self-contained sim
// whose load is a pure function of the cell seed.
struct SweepCell {
  double rate = 0.0;
};

struct SweepResult {
  TelemetrySeries telemetry;
  AlertLog alerts;
};

SweepResult RunSweepCell(const SweepCell& cell, Rng& root) {
  sim::Scheduler sched;
  Telemetry telemetry;
  Counter total = telemetry.AddCounter("slo.total");
  Counter good = telemetry.AddCounter("slo.good");
  Histogram lat = telemetry.AddHistogram("slo.lat");
  ThresholdRule rule;
  rule.name = "p99_high";
  rule.metric = "slo.lat";
  rule.agg = Agg::kP99;
  rule.threshold = 0.004;
  rule.window = 2.0;
  telemetry.AddThresholdRule(rule);
  Rng rng(root.Next());
  double t = 0.0;
  while (true) {
    t += rng.Exponential(cell.rate);
    if (t >= 6.0) break;
    sched.ScheduleAt(t, [&total, &good, &lat, &rng] {
      total.Add();
      const double latency = rng.Exponential(700.0);
      lat.Record(latency);
      if (latency <= 0.004) good.Add();
    });
  }
  sched.ScheduleAt(6.0, [&telemetry] { telemetry.Stop(); });
  telemetry.Start(&sched);
  sched.Run();
  return SweepResult{telemetry.TakeSeries(), telemetry.TakeAlerts()};
}

TEST(TelemetryTest, ExportsByteIdenticalAcrossThreadCounts) {
  const std::vector<SweepCell> cells{{200.0}, {800.0}};
  auto render = [&](int threads) {
    const sim::SweepPlan plan{/*replications=*/3, threads,
                              /*base_seed=*/0x77};
    auto sweep = sim::RunSweep(cells, plan, RunSweepCell);
    std::vector<TelemetrySeries> series;
    std::vector<AlertLog> alerts;
    for (auto& per_config : sweep) {
      for (auto& rep : per_config) {
        series.push_back(std::move(rep.telemetry));
        alerts.push_back(std::move(rep.alerts));
      }
    }
    return RenderTelemetryCsv(series) + "\n---\n" + RenderAlertsCsv(alerts);
  };
  const std::string serial = render(1);
  const std::string parallel = render(8);
  EXPECT_EQ(serial, parallel);
  // And the run was not trivially empty.
  EXPECT_NE(serial.find("slo.lat.count"), std::string::npos);
}

TEST(TelemetryTest, DisabledPlaneIsANoOp) {
  sim::Scheduler sched;
  Telemetry telemetry;
  Counter c = telemetry.AddCounter("c");
  Histogram h = telemetry.AddHistogram("h");
  telemetry.AddProbe("g", [] { return 1.0; });
  ThresholdRule rule;
  rule.name = "r";
  rule.metric = "c";
  rule.agg = Agg::kRate;
  rule.threshold = 0.0;
  telemetry.AddThresholdRule(rule);
  telemetry.set_enabled(false);
  for (int i = 0; i < 100; ++i) {
    sched.ScheduleAt(0.01 * (i + 1), [&c, &h] {
      c.Add();
      h.Record(0.001);
    });
  }
  sched.ScheduleAt(4.0, [&telemetry] { telemetry.Stop(); });
  telemetry.Start(&sched);
  sched.Run();
  EXPECT_EQ(telemetry.ticks(), 0u);
  EXPECT_TRUE(telemetry.series().rows.empty());
  EXPECT_TRUE(telemetry.alerts().empty());
  EXPECT_EQ(c.total(), 0.0);
  EXPECT_EQ(telemetry.Query("c", 10.0).count, 0u);
}

TEST(TelemetryTest, SloStreamFeedsInstruments) {
  sim::Scheduler sched;
  Telemetry telemetry;
  load::OpenLoopRecorder recorder(/*window_start=*/0.0, /*window_end=*/10.0,
                                  /*slo=*/0.005);
  recorder.set_stream(SloStreamInto(&telemetry, "slo"));
  sched.ScheduleAt(0.5, [&recorder] {
    // ok, under SLO
    recorder.OnComplete(/*intended=*/0.4, /*dispatched=*/0.45,
                        /*finished=*/0.403, true);
    // ok, over SLO
    recorder.OnComplete(0.4, 0.45, 0.42, true);
    // error
    recorder.OnComplete(0.4, 0.45, 0.41, false);
    // shed
    recorder.OnShed(0.45);
  });
  sched.ScheduleAt(1.0, [&telemetry] { telemetry.Stop(); });
  telemetry.Start(&sched);
  sched.Run();
  EXPECT_EQ(telemetry.Query("slo.offered", 1.0).sum, 4.0);
  EXPECT_EQ(telemetry.Query("slo.good", 1.0).sum, 1.0);
  EXPECT_EQ(telemetry.Query("slo.shed", 1.0).sum, 1.0);
  EXPECT_EQ(telemetry.Query("slo.errors", 1.0).sum, 1.0);
  const RollupResult lat = telemetry.Query("slo.latency", 1.0);
  EXPECT_EQ(lat.count, 2u);  // errors record no latency
  EXPECT_NEAR(lat.min, 0.003, 1e-12);
  EXPECT_NEAR(lat.max, 0.02, 1e-12);
}

TEST(TelemetryTest, NodeHealthScoresAndRenormalizesWeights) {
  sim::Scheduler sched;
  Telemetry telemetry;
  telemetry.AddProbe("n0.util", [] { return 0.5; });
  Counter shed = telemetry.AddCounter("n.shed");
  NodeHealthConfig config;
  config.window = 4.0;
  config.shed_rate_cap = 10.0;
  NodeHealth health(&telemetry, config);
  NodeHealthInputs inputs;
  inputs.utilization = "n0.util";
  inputs.shed = "n.shed";  // power/queue/lag left empty: dropped terms
  health.AddNode(0, inputs);
  health.AddNode(1, NodeHealthInputs{});  // no inputs: perfectly healthy

  Tracer tracer;
  health.EmitTraceInstants(&tracer);
  for (int i = 0; i < 8; ++i) {  // 2 sheds/s
    sched.ScheduleAt(0.25 + 0.5 * i, [&shed] { shed.Add(); });
  }
  sched.ScheduleAt(4.0, [&telemetry] { telemetry.Stop(); });
  telemetry.Start(&sched, &tracer);
  sched.Run();

  // util term: mean 0.5 / cap 1.0; shed term: rate 2/s / cap 10. Only
  // the two wired weights participate.
  const double util_mean =
      telemetry.QueryAgg("n0.util", Agg::kMean, config.window);
  const double shed_rate =
      telemetry.QueryAgg("n.shed", Agg::kRate, config.window);
  EXPECT_EQ(util_mean, 0.5);
  EXPECT_EQ(shed_rate, 2.0);
  const double expected =
      1.0 - (config.w_util * 0.5 + config.w_shed * (2.0 / 10.0)) /
                (config.w_util + config.w_shed);
  EXPECT_NEAR(health.Score(0), expected, 1e-12);
  EXPECT_EQ(health.Score(1), 1.0);
  EXPECT_EQ(health.Score(99), 1.0);  // unknown node

  // Every tick emitted one kHealth instant per node, score in permille.
  const TraceLog log = tracer.TakeLog();
  int health_instants = 0;
  for (const TraceEvent& e : log.events) {
    if (e.category == Category::kHealth) ++health_instants;
  }
  EXPECT_EQ(health_instants, 2 * 4);
}

}  // namespace
}  // namespace wimpy::obs
