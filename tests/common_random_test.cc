#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace wimpy {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, LogNormalMeanStdMatchesTarget) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.LogNormalMeanStd(5.0, 1.5);
    EXPECT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 1.5, 0.1);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng root1(42), root2(42);
  Rng a1 = root1.Fork();
  Rng b1 = root1.Fork();
  Rng a2 = root2.Fork();
  Rng b2 = root2.Fork();
  // Same tree position -> same stream.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a1.Next(), a2.Next());
    EXPECT_EQ(b1.Next(), b2.Next());
  }
  // Sibling streams differ.
  Rng a3 = Rng(42).Fork();
  Rng b3 = [&] {
    Rng r(42);
    r.Fork();
    return r.Fork();
  }();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a3.Next() == b3.Next();
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace wimpy
