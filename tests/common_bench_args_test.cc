#include "common/bench_args.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace wimpy {
namespace {

// ParseBenchArgs takes (argc, argv); this builds a mutable argv from
// literals so tests read like command lines.
BenchArgs Parse(std::vector<std::string> cli) {
  cli.insert(cli.begin(), "bench");
  std::vector<char*> argv;
  for (std::string& arg : cli) argv.push_back(arg.data());
  return ParseBenchArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchArgsTest, Defaults) {
  const BenchArgs args = Parse({});
  EXPECT_EQ(args.replications, 1);
  EXPECT_EQ(args.threads, 0);
  EXPECT_EQ(args.seed, 0x5EED2016u);
  EXPECT_TRUE(args.trace_path.empty());
  EXPECT_TRUE(args.metrics_path.empty());
  EXPECT_TRUE(args.trace_summary_path.empty());
}

TEST(BenchArgsTest, ParsesAllFlags) {
  const BenchArgs args =
      Parse({"--replications=5", "--threads=3", "--seed=42",
             "--trace=/tmp/t.json", "--metrics=/tmp/m.csv",
             "--trace-summary=/tmp/s.csv"});
  EXPECT_EQ(args.replications, 5);
  EXPECT_EQ(args.threads, 3);
  EXPECT_EQ(args.seed, 42u);
  EXPECT_EQ(args.trace_path, "/tmp/t.json");
  EXPECT_EQ(args.metrics_path, "/tmp/m.csv");
  EXPECT_EQ(args.trace_summary_path, "/tmp/s.csv");
}

TEST(BenchArgsTest, TraceSummaryDoesNotClobberTrace) {
  // "--trace-summary" shares the "--trace" prefix; the parser must keep
  // the two flags independent.
  const BenchArgs args = Parse({"--trace-summary=/tmp/s.csv"});
  EXPECT_TRUE(args.trace_path.empty());
  EXPECT_EQ(args.trace_summary_path, "/tmp/s.csv");
}

TEST(BenchArgsTest, ResolvedThreadsIsAlwaysPositive) {
  BenchArgs args;
  args.threads = 0;  // hardware concurrency
  EXPECT_GE(ResolvedThreads(args), 1);
  args.threads = 7;
  EXPECT_EQ(ResolvedThreads(args), 7);
}

TEST(BenchArgsDeathTest, RejectsNegativeSeed) {
  // A negative seed used to wrap silently through the uint64_t cast into
  // a huge unrelated seed tree; it must now be an argument error.
  EXPECT_EXIT(Parse({"--seed=-1"}), testing::ExitedWithCode(2),
              "--seed must be >= 0");
}

TEST(BenchArgsDeathTest, RejectsNegativeReplications) {
  EXPECT_EXIT(Parse({"--replications=0"}), testing::ExitedWithCode(2),
              "--replications must be >= 1");
}

TEST(BenchArgsDeathTest, RejectsUnknownFlag) {
  EXPECT_EXIT(Parse({"--bogus=1"}), testing::ExitedWithCode(2),
              "unknown argument");
}

}  // namespace
}  // namespace wimpy
