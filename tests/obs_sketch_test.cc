// HdrSketch (obs/sketch.h): geometry pins, the quantile error bound
// against exact order statistics and the PercentileTracker cross-check,
// exact shard merging, and CSV-row reconstruction (docs/telemetry.md).
#include "obs/sketch.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"

namespace wimpy::obs {
namespace {

double BucketWidth(int index) {
  return HdrSketch::BucketUpper(index) - HdrSketch::BucketLower(index);
}

TEST(HdrSketchTest, GeometryPins) {
  // The geometry is part of the export format (name.b<idx> CSV rows), so
  // these constants are load-bearing: changing them invalidates every
  // recorded telemetry CSV.
  EXPECT_EQ(HdrSketch::kMinExp, -29);
  EXPECT_EQ(HdrSketch::kMaxExp, 20);
  EXPECT_EQ(HdrSketch::kSubBuckets, 32);
  EXPECT_EQ(HdrSketch::kOctaves, 50);
  EXPECT_EQ(HdrSketch::kBucketCount, 50 * 32 + 2);

  // Underflow: everything below 2^-30, including zero and negatives.
  EXPECT_EQ(HdrSketch::BucketIndex(0.0), 0);
  EXPECT_EQ(HdrSketch::BucketIndex(-1.0), 0);
  EXPECT_EQ(HdrSketch::BucketIndex(0x1p-31), 0);
  // Overflow: at and above 2^20.
  EXPECT_EQ(HdrSketch::BucketIndex(0x1p20), HdrSketch::kBucketCount - 1);
  EXPECT_EQ(HdrSketch::BucketIndex(1e18), HdrSketch::kBucketCount - 1);
  // 1.0 = frexp exponent 1, mantissa 0.5: first sub-bucket of that
  // octave. Octave for exponent e starts at 1 + (e - kMinExp) * 32.
  EXPECT_EQ(HdrSketch::BucketIndex(1.0), 1 + 30 * 32);
  // Smallest in-domain value: first real bucket.
  EXPECT_EQ(HdrSketch::BucketIndex(0x1p-30), 1);
}

TEST(HdrSketchTest, BucketBoundsBracketValuesAndBoundWidth) {
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform across the whole domain.
    const double v = std::exp(rng.Uniform(std::log(0x1p-30),
                                          std::log(0x1p20 * 0.999)));
    const int idx = HdrSketch::BucketIndex(v);
    ASSERT_GE(idx, 1);
    ASSERT_LT(idx, HdrSketch::kBucketCount - 1);
    EXPECT_GE(v, HdrSketch::BucketLower(idx)) << "value " << v;
    EXPECT_LT(v, HdrSketch::BucketUpper(idx)) << "value " << v;
    // Relative width bound: one linear sub-bucket of an octave is at
    // most 1/kSubBuckets of the octave's lower edge... times 2 at the
    // top of the octave, so relative to the value itself it is <= 1/16.
    EXPECT_LE(BucketWidth(idx) / v, 2.0 / HdrSketch::kSubBuckets * 1.001);
  }
  // Bucket edges tile the domain exactly.
  for (int idx = 1; idx < HdrSketch::kBucketCount - 2; ++idx) {
    EXPECT_DOUBLE_EQ(HdrSketch::BucketUpper(idx),
                     HdrSketch::BucketLower(idx + 1));
  }
}

TEST(HdrSketchTest, EmptySketchIsNaN) {
  HdrSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_TRUE(std::isnan(sketch.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(sketch.min()));
  EXPECT_TRUE(std::isnan(sketch.max()));
}

// The advertised error contract: a sketch quantile is the midpoint of
// the bucket holding the rank's order statistic, so it is within one
// bucket width of that exact order statistic.
TEST(HdrSketchTest, QuantileWithinOneBucketOfExactOrderStatistic) {
  Rng rng(42);
  HdrSketch sketch;
  std::vector<double> values;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.Exponential(1000.0);  // ~1 ms latencies
    sketch.Record(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double exact = values[std::min(rank, values.size()) - 1];
    const double approx = sketch.Quantile(q);
    const double width = BucketWidth(HdrSketch::BucketIndex(exact));
    EXPECT_NEAR(approx, exact, width)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

// Cross-check against the repo's exact tracker (common/stats.h). The
// tracker interpolates between adjacent order statistics, each within
// one bucket of the sketch's answer, so two bucket widths (three at an
// octave boundary, where the width doubles) bound the disagreement.
TEST(HdrSketchTest, AgreesWithPercentileTracker) {
  Rng rng(7);
  HdrSketch sketch;
  PercentileTracker tracker;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.Exponential(250.0);  // ~4 ms latencies
    sketch.Record(v);
    tracker.Add(v);
  }
  for (double q : {0.50, 0.90, 0.99}) {
    const double exact = tracker.Percentile(q);
    const double approx = sketch.Quantile(q);
    const double width = BucketWidth(HdrSketch::BucketIndex(exact));
    EXPECT_NEAR(approx, exact, 3.0 * width) << "q=" << q;
  }
}

// Merge is exact: sharding a stream across sketches and merging yields
// bit-identical counts — and therefore identical quantiles — to
// recording the whole stream into one sketch. This is the property the
// RunSweep index-order merge and windowed Query both lean on.
TEST(HdrSketchTest, MergeOfShardsEqualsWholeStream) {
  constexpr int kShards = 8;
  Rng rng(123);
  HdrSketch whole;
  std::vector<HdrSketch> shards(kShards);
  for (int i = 0; i < 30000; ++i) {
    const double v = rng.Exponential(500.0);
    whole.Record(v);
    shards[i % kShards].Record(v);
  }
  HdrSketch merged;
  for (const HdrSketch& shard : shards) merged.Merge(shard);
  EXPECT_EQ(merged, whole);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  for (double q : {0.01, 0.50, 0.90, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
}

// AddBucketCount rebuilds a sketch from exported (index, count) rows;
// the rank walk sees identical counts, so every quantile's selected
// bucket midpoint matches the original exactly (the original may clamp
// to its exact min/max, which the export carries separately).
TEST(HdrSketchTest, ReconstructionFromBucketRows) {
  Rng rng(99);
  HdrSketch original;
  for (int i = 0; i < 10000; ++i) original.Record(rng.Exponential(100.0));
  HdrSketch rebuilt;
  original.ForEachNonZero([&rebuilt](int index, std::uint64_t count) {
    rebuilt.AddBucketCount(index, count);
  });
  EXPECT_EQ(rebuilt.count(), original.count());
  for (double q : {0.05, 0.50, 0.90, 0.99}) {
    const double from_rebuilt =
        std::clamp(rebuilt.Quantile(q), original.min(), original.max());
    EXPECT_DOUBLE_EQ(from_rebuilt, original.Quantile(q)) << "q=" << q;
  }
}

TEST(HdrSketchTest, ResetKeepsGeometryDropsData) {
  HdrSketch sketch;
  sketch.Record(1.0);
  sketch.Record(2.0);
  EXPECT_EQ(sketch.count(), 2u);
  sketch.Reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_TRUE(std::isnan(sketch.Quantile(0.5)));
  sketch.Record(4.0);
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_DOUBLE_EQ(sketch.min(), 4.0);
}

}  // namespace
}  // namespace wimpy::obs
