#include <gtest/gtest.h>

#include <memory>

#include "hw/profiles.h"
#include "mapreduce/hdfs.h"
#include "mapreduce/yarn.h"
#include "sim/process.h"

namespace wimpy::mapreduce {
namespace {

class HdfsTest : public ::testing::Test {
 protected:
  HdfsTest() : fabric_(&sched_) {
    for (int i = 0; i < 4; ++i) {
      nodes_.push_back(std::make_unique<hw::ServerNode>(
          &sched_, hw::EdisonProfile(), i));
      fabric_.AddNode(nodes_.back().get(), "room");
      slaves_.push_back(nodes_.back().get());
    }
  }

  Hdfs MakeHdfs(Bytes block, int replication) {
    return Hdfs(&fabric_, slaves_, HdfsConfig{block, replication}, 42);
  }

  sim::Scheduler sched_;
  net::Fabric fabric_;
  std::vector<std::unique_ptr<hw::ServerNode>> nodes_;
  std::vector<hw::ServerNode*> slaves_;
};

TEST_F(HdfsTest, FileSplitsIntoBlocks) {
  Hdfs hdfs = MakeHdfs(MiB(16), 2);
  const HdfsFile& file = hdfs.LoadFile("f", MiB(50));
  ASSERT_EQ(file.blocks.size(), 4u);  // 16+16+16+2
  EXPECT_EQ(file.blocks[0].size, MiB(16));
  EXPECT_EQ(file.blocks[3].size, MiB(2));
  for (const auto& block : file.blocks) {
    EXPECT_EQ(block.replica_nodes.size(), 2u);
    EXPECT_NE(block.replica_nodes[0], block.replica_nodes[1]);
  }
}

TEST_F(HdfsTest, LoadFilesSplitsTotalEvenly) {
  Hdfs hdfs = MakeHdfs(MiB(16), 1);
  const auto names = hdfs.LoadFiles("input", 10, MiB(100));
  ASSERT_EQ(names.size(), 10u);
  Bytes total = 0;
  for (const auto& name : names) {
    auto file = hdfs.GetFile(name);
    ASSERT_TRUE(file.ok());
    total += file->size;
  }
  EXPECT_EQ(total, MiB(100));
}

TEST_F(HdfsTest, GetFileUnknownFails) {
  Hdfs hdfs = MakeHdfs(MiB(16), 1);
  EXPECT_FALSE(hdfs.GetFile("missing").ok());
}

TEST_F(HdfsTest, PlacementSpreadsAcrossNodes) {
  Hdfs hdfs = MakeHdfs(MiB(16), 1);
  const HdfsFile& file = hdfs.LoadFile("spread", MiB(16) * 8);
  std::map<int, int> per_node;
  for (const auto& block : file.blocks) {
    ++per_node[block.replica_nodes[0]];
  }
  // Round-robin over 4 nodes -> exactly 2 each.
  EXPECT_EQ(per_node.size(), 4u);
  for (const auto& [node, count] : per_node) EXPECT_EQ(count, 2);
}

sim::Process ReadOne(Hdfs& hdfs, const HdfsBlock& block, int reader,
                     sim::Scheduler& sched, double* done_at) {
  co_await hdfs.ReadBlock(block, reader);
  *done_at = sched.now();
}

TEST_F(HdfsTest, LocalReadAvoidsNetwork) {
  Hdfs hdfs = MakeHdfs(MiB(16), 1);
  const HdfsFile& file = hdfs.LoadFile("f", MiB(16));
  const HdfsBlock& block = file.blocks[0];
  const int holder = block.replica_nodes[0];
  double local_done = -1;
  sim::Spawn(sched_, ReadOne(hdfs, block, holder, sched_, &local_done));
  sched_.Run();
  // 16 MiB at 19.5 MB/s direct read.
  const double disk_time = static_cast<double>(MiB(16)) / MBps(19.5);
  EXPECT_NEAR(local_done, disk_time, 0.01);

  // Remote read pays the 100 Mbps wire on top.
  const int remote = (holder + 1) % 4;
  double remote_done = -1;
  sim::Spawn(sched_, ReadOne(hdfs, block, remote, sched_, &remote_done));
  sched_.Run();
  const double wire_time = static_cast<double>(MiB(16)) / Mbps(100);
  EXPECT_NEAR(remote_done - local_done, disk_time + wire_time, 0.05);
  EXPECT_TRUE(hdfs.HasLocalReplica(block, holder));
  EXPECT_FALSE(hdfs.HasLocalReplica(block, remote));
}

sim::Process WriteOne(Hdfs& hdfs, const std::string& name, Bytes size,
                      int writer, sim::Scheduler& sched, double* done_at) {
  co_await hdfs.WriteFile(name, size, writer);
  *done_at = sched.now();
}

TEST_F(HdfsTest, ReplicatedWriteCostsMoreThanSingle) {
  Hdfs hdfs1 = MakeHdfs(MiB(16), 1);
  double t1 = -1;
  sim::Spawn(sched_, WriteOne(hdfs1, "a", MiB(32), 0, sched_, &t1));
  sched_.Run();
  const double start2 = sched_.now();
  Hdfs hdfs2 = MakeHdfs(MiB(16), 2);
  double t2 = -1;
  sim::Spawn(sched_, WriteOne(hdfs2, "b", MiB(32), 0, sched_, &t2));
  sched_.Run();
  EXPECT_GT(t2 - start2, t1 * 1.5);  // second replica adds disk + wire
}

TEST_F(HdfsTest, LocalityAccounting) {
  Hdfs hdfs = MakeHdfs(MiB(16), 1);
  hdfs.RecordMapLocality(true);
  hdfs.RecordMapLocality(true);
  hdfs.RecordMapLocality(true);
  hdfs.RecordMapLocality(false);
  EXPECT_DOUBLE_EQ(hdfs.DataLocalFraction(), 0.75);
}

class YarnTest : public ::testing::Test {
 protected:
  YarnTest() : fabric_(&sched_) {
    for (int i = 0; i < 3; ++i) {
      nodes_.push_back(std::make_unique<hw::ServerNode>(
          &sched_, hw::EdisonProfile(), i));
      fabric_.AddNode(nodes_.back().get(), "room");
      slaves_.push_back(nodes_.back().get());
    }
    config_.node_usable_memory = MB(600);
    config_.node_vcores = 2;
    config_.containers_per_node_heartbeat = 100;  // effectively unlimited
  }

  sim::Scheduler sched_;
  net::Fabric fabric_;
  std::vector<std::unique_ptr<hw::ServerNode>> nodes_;
  std::vector<hw::ServerNode*> slaves_;
  YarnConfig config_;
};

sim::Process AllocOne(Yarn& yarn, Bytes mem, std::vector<int> preferred,
                      Container* out, sim::Scheduler& sched,
                      double* granted_at) {
  *out = co_await yarn.Allocate(mem, preferred);
  *granted_at = sched.now();
}

TEST_F(YarnTest, AllocatesUpToMemoryCapacity) {
  Yarn yarn(slaves_, config_);
  std::vector<Container> containers(12);
  std::vector<double> granted(12, -1);
  for (int i = 0; i < 12; ++i) {
    sim::Spawn(sched_, AllocOne(yarn, MB(150), {}, &containers[i], sched_,
                                &granted[i]));
  }
  sched_.Run(/*until=*/0.1);
  // 3 nodes x 600 MB / 150 MB = 12 fit immediately.
  for (int i = 0; i < 12; ++i) EXPECT_EQ(granted[i], 0.0) << i;
  EXPECT_EQ(yarn.containers_allocated(), 12);
}

TEST_F(YarnTest, ThirteenthContainerWaitsForRelease) {
  Yarn yarn(slaves_, config_);
  std::vector<Container> containers(13);
  std::vector<double> granted(13, -1);
  for (int i = 0; i < 13; ++i) {
    sim::Spawn(sched_, AllocOne(yarn, MB(150), {}, &containers[i], sched_,
                                &granted[i]));
  }
  sched_.Run(/*until=*/5.0);
  EXPECT_EQ(granted[12], -1);
  sched_.ScheduleAt(10.0, [&] { yarn.Release(containers[0]); });
  sched_.Run(/*until=*/20.0);
  EXPECT_GE(granted[12], 10.0);
  EXPECT_LE(granted[12], 12.0);  // next heartbeat poll after release
  sched_.Run();
}

TEST_F(YarnTest, PrefersRequestedNodes) {
  Yarn yarn(slaves_, config_);
  Container c;
  double granted = -1;
  sim::Spawn(sched_,
             AllocOne(yarn, MB(150), {slaves_[2]->id()}, &c, sched_,
                      &granted));
  sched_.Run();
  EXPECT_EQ(c.node->id(), slaves_[2]->id());
  yarn.Release(c);
}

TEST_F(YarnTest, HeartbeatLimitsAssignmentRate) {
  config_.containers_per_node_heartbeat = 1;
  config_.heartbeat = Seconds(1.0);
  Yarn yarn(slaves_, config_);
  // 9 tiny requests on 3 nodes at 1 container/node/heartbeat: the last
  // wave lands ~2 s in.
  std::vector<Container> containers(9);
  std::vector<double> granted(9, -1);
  for (int i = 0; i < 9; ++i) {
    sim::Spawn(sched_, AllocOne(yarn, MB(10), {}, &containers[i], sched_,
                                &granted[i]));
  }
  sched_.Run(/*until=*/30.0);
  double latest = 0;
  for (double g : granted) {
    ASSERT_GE(g, 0.0);
    latest = std::max(latest, g);
  }
  EXPECT_GE(latest, 2.0);
  EXPECT_LE(latest, 4.0);
  sched_.Run();
}

TEST_F(YarnTest, ReleaseRestoresHardwareMemoryTelemetry) {
  Yarn yarn(slaves_, config_);
  const Bytes before = slaves_[0]->memory().used();
  Container c;
  double granted = -1;
  sim::Spawn(sched_, AllocOne(yarn, MB(200), {slaves_[0]->id()}, &c,
                              sched_, &granted));
  sched_.Run();
  EXPECT_GT(slaves_[0]->memory().used(), before);
  yarn.Release(c);
  EXPECT_EQ(slaves_[0]->memory().used(), before);
}

}  // namespace
}  // namespace wimpy::mapreduce
