// Cross-layer energy-accounting properties: the cluster-level joules the
// experiment harnesses report must equal the sum of per-node integrals,
// stay additive across disjoint role sets, and be insensitive to sampling.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/metrics.h"
#include "hw/profiles.h"
#include "sim/process.h"

namespace wimpy::cluster {
namespace {

sim::Process Burn(hw::ServerNode* node, double seconds) {
  co_await node->Compute(node->cpu().spec().dmips_per_thread * seconds);
}

class PowerAccountingTest : public ::testing::Test {
 protected:
  PowerAccountingTest() : fabric_(&sched_), cluster_(&sched_, &fabric_) {}

  sim::Scheduler sched_;
  net::Fabric fabric_;
  Cluster cluster_;
};

TEST_F(PowerAccountingTest, ClusterJoulesEqualSumOfNodes) {
  auto a = cluster_.AddNodes(hw::EdisonProfile(), 3, "a", "room");
  auto b = cluster_.AddNodes(hw::DellR620Profile(), 2, "b", "room");
  sim::Spawn(sched_, Burn(a[0], 5.0));
  sim::Spawn(sched_, Burn(b[1], 3.0));
  sched_.ScheduleAt(10.0, [] {});
  sched_.Run();
  Joules sum = 0;
  for (auto* node : cluster_.AllNodes()) {
    sum += node->power().CumulativeJoules();
  }
  EXPECT_NEAR(cluster_.CumulativeJoules(), sum, 1e-9);
}

TEST_F(PowerAccountingTest, RoleEnergyIsAdditive) {
  cluster_.AddNodes(hw::EdisonProfile(), 4, "web", "room");
  cluster_.AddNodes(hw::EdisonProfile(), 2, "cache", "room");
  cluster_.AddNodes(hw::DellR620Profile(), 1, "db", "room");
  sched_.ScheduleAt(20.0, [] {});
  sched_.Run();
  const Joules web = cluster_.CumulativeJoules({"web"});
  const Joules cache = cluster_.CumulativeJoules({"cache"});
  const Joules db = cluster_.CumulativeJoules({"db"});
  EXPECT_NEAR(web + cache, cluster_.CumulativeJoules({"web", "cache"}),
              1e-9);
  EXPECT_NEAR(web + cache + db, cluster_.CumulativeJoules(), 1e-9);
  // Idle analytic check.
  EXPECT_NEAR(web, 4 * 1.40 * 20.0, 1e-6);
  EXPECT_NEAR(db, 52.0 * 20.0, 1e-6);
}

TEST_F(PowerAccountingTest, SamplerDoesNotPerturbEnergy) {
  auto nodes = cluster_.AddNodes(hw::EdisonProfile(), 2, "w", "room");
  sim::Spawn(sched_, Burn(nodes[0], 8.0));
  MetricsSampler sampler(&cluster_, {"w"}, 0.25);
  sampler.Start();
  sched_.Run(/*until=*/16.0);
  sampler.Stop();
  sched_.Run();
  // Energy equals the analytic value: 8 s of one busy core plus idle.
  const auto& p = hw::EdisonProfile().power;
  const double core_frac = 0.5;
  const Joules expected =
      2 * p.idle * 16.0 +
      (p.busy - p.idle) * p.cpu_weight * core_frac * 8.0;
  EXPECT_NEAR(cluster_.CumulativeJoules(), expected, expected * 1e-9);
  EXPECT_GE(sampler.samples().size(), 60u);
}

TEST_F(PowerAccountingTest, WattsMatchDerivativeOfJoules) {
  auto nodes = cluster_.AddNodes(hw::DellR620Profile(), 1, "n", "room");
  sim::Spawn(sched_, Burn(nodes[0], 4.0));
  sched_.Run(/*until=*/2.0);
  const Joules j1 = cluster_.CumulativeJoules();
  const Watts w = cluster_.TotalWatts();
  sched_.Run(/*until=*/2.5);
  const Joules j2 = cluster_.CumulativeJoules();
  EXPECT_NEAR((j2 - j1) / 0.5, w, 1e-9);  // constant power in the window
  sched_.Run();
}

}  // namespace
}  // namespace wimpy::cluster
