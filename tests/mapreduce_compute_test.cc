#include "mapreduce/compute.h"

#include <gtest/gtest.h>

#include "mapreduce/textgen.h"

namespace wimpy::mapreduce {
namespace {

TEST(TextGenTest, CorpusHasRequestedSizeAndWords) {
  Rng rng(1);
  const std::string corpus = GenerateTextCorpus(KB(64), 1000, rng);
  EXPECT_GE(static_cast<Bytes>(corpus.size()), KB(64));
  EXPECT_LT(static_cast<Bytes>(corpus.size()), KB(66));
  EXPECT_NE(corpus.find(' '), std::string::npos);
  EXPECT_NE(corpus.find('\n'), std::string::npos);
}

TEST(TextGenTest, LogFileLinesParse) {
  Rng rng(2);
  const std::string log = GenerateLogFile(KB(32), 7, rng);
  EXPECT_EQ(log.substr(0, 8), "2016-02-");
  EXPECT_NE(log.find(" INFO "), std::string::npos);
}

TEST(TextGenTest, TeraRecordsAreFixedWidth) {
  Rng rng(3);
  const std::string records = GenerateTeraRecords(100, rng);
  EXPECT_EQ(records.size(), 100u * kTeraRecordBytes);
}

TEST(WordCountTest, CountsExactly) {
  std::map<std::string, std::int64_t> counts;
  const MapStats stats = WordCountMap("the cat and the hat\nthe end\n",
                                      &counts);
  EXPECT_EQ(counts["the"], 3);
  EXPECT_EQ(counts["cat"], 1);
  EXPECT_EQ(stats.output_records, 7);
  EXPECT_EQ(stats.distinct_keys, 5);
  EXPECT_EQ(stats.input_records, 2);
}

TEST(WordCountTest, StatsOnGeneratedCorpus) {
  Rng rng(4);
  const std::string corpus = GenerateTextCorpus(MB(1), 10000, rng);
  const MapStats stats = WordCountMap(corpus, nullptr);
  // Map output is larger than the input (the paper's wordcount shuffles
  // more than it reads) ...
  EXPECT_GT(stats.OutputRatio(), 1.2);
  EXPECT_LT(stats.OutputRatio(), 2.2);
  // ... and a combiner would collapse it dramatically (Zipf vocabulary).
  EXPECT_LT(stats.CombinerSurvival(), 0.15);
}

TEST(LogCountTest, ExtractsDateLevelKeys) {
  std::map<std::string, std::int64_t> counts;
  const std::string log =
      "2016-02-01 10:00:00,123 INFO org.apache.Foo: message one\n"
      "2016-02-01 11:30:00,456 INFO org.apache.Bar: message two\n"
      "2016-02-02 09:15:00,789 ERROR org.apache.Foo: bad thing\n";
  const MapStats stats = LogCountMap(log, &counts);
  EXPECT_EQ(counts["2016-02-01 INFO"], 2);
  EXPECT_EQ(counts["2016-02-02 ERROR"], 1);
  EXPECT_EQ(stats.distinct_keys, 2);
  EXPECT_EQ(stats.input_records, 3);
}

TEST(LogCountTest, GeneratedLogsHaveFewDistinctKeys) {
  Rng rng(5);
  const std::string log = GenerateLogFile(MB(1), 7, rng);
  const MapStats stats = LogCountMap(log, nullptr);
  // 7 days x 4 levels = at most 28 keys from ~10k lines.
  EXPECT_LE(stats.distinct_keys, 28);
  EXPECT_GT(stats.input_records, 5000);
  EXPECT_LT(stats.CombinerSurvival(), 0.01);
  // Much smaller map output than wordcount (paper: "much lighter").
  EXPECT_LT(stats.OutputRatio(), 0.35);
}

TEST(TeraSortTest, SortsAndValidates) {
  Rng rng(6);
  const std::string records = GenerateTeraRecords(1000, rng);
  EXPECT_FALSE(TeraValidate(records));  // random order fails validation
  const std::string sorted = TeraSortRecords(records);
  EXPECT_EQ(sorted.size(), records.size());
  EXPECT_TRUE(TeraValidate(sorted));
}

TEST(TeraSortTest, SortIsPermutation) {
  Rng rng(7);
  const std::string records = GenerateTeraRecords(500, rng);
  std::string sorted = TeraSortRecords(records);
  // Same multiset of records: sort both byte-wise record lists.
  auto to_sorted_records = [](std::string_view data) {
    std::vector<std::string> recs;
    for (std::size_t i = 0; i + kTeraRecordBytes <= data.size();
         i += kTeraRecordBytes) {
      recs.emplace_back(data.substr(i, kTeraRecordBytes));
    }
    std::sort(recs.begin(), recs.end());
    return recs;
  };
  EXPECT_EQ(to_sorted_records(records), to_sorted_records(sorted));
}

TEST(PiTest, EstimateConverges) {
  Rng rng(8);
  const PiResult result = EstimatePi(2000000, rng);
  EXPECT_NEAR(result.estimate, 3.14159, 0.01);
  EXPECT_EQ(result.samples, 2000000);
}

TEST(PiTest, ZeroSamplesSafe) {
  Rng rng(9);
  const PiResult result = EstimatePi(0, rng);
  EXPECT_EQ(result.estimate, 0.0);
}

}  // namespace
}  // namespace wimpy::mapreduce
