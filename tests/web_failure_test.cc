#include <gtest/gtest.h>

#include "web/service.h"

namespace wimpy::web {
namespace {

// Paper §1, advantage 2: node failure hurts a large micro-server fleet far
// less than a small brawny fleet, because the redistributed share is
// proportionally tiny.

TEST(WebFailureTest, LosingOneOfManyEdisonsBarelyMoves) {
  WebExperiment exp(EdisonWebTestbed(12, 6));
  const auto report = exp.MeasureWithFailure(
      LightMix(), /*concurrency=*/128, /*calls=*/8, /*failed_servers=*/1,
      Seconds(2), Seconds(8));
  ASSERT_EQ(report.total_servers, 12);
  ASSERT_EQ(report.failed_servers, 1);
  EXPECT_GT(report.before.achieved_rps, 0);
  // Redistribution of 1/12 of the load: throughput within ~15%.
  EXPECT_GT(report.after.achieved_rps, 0.85 * report.before.achieved_rps);
  EXPECT_LT(report.after.error_rate, 0.10);
}

TEST(WebFailureTest, LosingOneOfTwoDellsDoublesLoad) {
  // Offer a load the pair handles but a single survivor cannot
  // (2-server capacity ~17k rps; survivor ~8.5k; offered ~11k).
  WebExperiment exp(DellWebTestbed(2, 1));
  const auto report = exp.MeasureWithFailure(
      LightMix(), /*concurrency=*/800, /*calls=*/14, /*failed_servers=*/1,
      Seconds(2), Seconds(8));
  ASSERT_EQ(report.total_servers, 2);
  EXPECT_GT(report.before.achieved_rps, 0);
  // The survivor takes 100% extra load: latency degrades sharply.
  EXPECT_GT(report.after.mean_response,
            1.5 * report.before.mean_response);
}

TEST(WebFailureTest, FailingZeroServersChangesNothingMuch) {
  WebExperiment exp(EdisonWebTestbed(6, 3));
  const auto report = exp.MeasureWithFailure(LightMix(), 64, 8, 0,
                                             Seconds(2), Seconds(6));
  EXPECT_EQ(report.failed_servers, 0);
  EXPECT_NEAR(report.after.achieved_rps, report.before.achieved_rps,
              0.25 * report.before.achieved_rps + 20);
}

TEST(WebFailureTest, FailureCountIsClampedToLeaveOneServer) {
  WebExperiment exp(EdisonWebTestbed(3, 2));
  const auto report = exp.MeasureWithFailure(LightMix(), 32, 4, 99,
                                             Seconds(2), Seconds(5));
  EXPECT_EQ(report.failed_servers, 2);  // 3 servers -> at most 2 fail
  EXPECT_GT(report.after.achieved_rps, 0);  // survivor still serves
}

}  // namespace
}  // namespace wimpy::web
