// sim::BatchTimerQueue tests: FIFO firing of identical-delay timers, O(1)
// cancel semantics, and the batching win — many arms share few engine
// events (the TIME_WAIT optimisation; net/tcp.cc is the production
// client, covered end to end by net_edge_test's TIME_WAIT cases).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/batch_timer.h"
#include "sim/scheduler.h"

namespace wimpy::sim {
namespace {

TEST(BatchTimerTest, FiresInArmOrderAfterTheFixedDelay) {
  Scheduler sched;
  BatchTimerQueue timers(&sched, 5.0);
  std::vector<std::pair<int, SimTime>> fired;

  timers.Arm([&] { fired.emplace_back(1, sched.now()); });
  sched.Run(2.0);  // advance the clock between arms
  timers.Arm([&] { fired.emplace_back(2, sched.now()); });
  EXPECT_EQ(timers.pending(), 2u);
  sched.Run();

  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], std::make_pair(1, 5.0));
  EXPECT_EQ(fired[1], std::make_pair(2, 7.0));
  EXPECT_EQ(timers.pending(), 0u);
  EXPECT_EQ(timers.delay(), 5.0);
}

TEST(BatchTimerTest, EqualDueTimersBatchIntoOneEngineEvent) {
  Scheduler sched;
  BatchTimerQueue timers(&sched, 5.0);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    timers.Arm([&order, i] { order.push_back(i); });
  }
  // 50 timers due at the same instant cost a single engine event.
  EXPECT_EQ(timers.engine_events_armed(), 1u);
  sched.Run();

  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sched.now(), 5.0);
}

TEST(BatchTimerTest, ArmWhilePendingReusesTheEngineEvent) {
  Scheduler sched;
  BatchTimerQueue timers(&sched, 5.0);
  int fired = 0;
  timers.Arm([&fired] { ++fired; });
  sched.Run(2.0);
  timers.Arm([&fired] { ++fired; });  // head event already armed
  EXPECT_EQ(timers.engine_events_armed(), 1u);
  sched.Run();
  EXPECT_EQ(fired, 2);
  // The second timer (due 7.0) needed one re-arm after the first fired.
  EXPECT_EQ(timers.engine_events_armed(), 2u);
}

TEST(BatchTimerTest, CancelIsIdempotentAndSkipsTheDeadEntry) {
  Scheduler sched;
  BatchTimerQueue timers(&sched, 3.0);
  std::vector<int> order;
  const auto a = timers.Arm([&order] { order.push_back(1); });
  const auto b = timers.Arm([&order] { order.push_back(2); });
  const auto c = timers.Arm([&order] { order.push_back(3); });

  EXPECT_TRUE(timers.Cancel(b));
  EXPECT_FALSE(timers.Cancel(b));  // double cancel
  EXPECT_FALSE(timers.Cancel(0));  // never a valid token
  EXPECT_EQ(timers.pending(), 2u);

  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_FALSE(timers.Cancel(a));  // already fired
  EXPECT_FALSE(timers.Cancel(c));
  EXPECT_EQ(timers.pending(), 0u);
}

TEST(BatchTimerTest, CancellingTheHeadStillFiresLaterTimers) {
  Scheduler sched;
  BatchTimerQueue timers(&sched, 4.0);
  std::vector<std::pair<int, SimTime>> fired;
  const auto head = timers.Arm([&] { fired.emplace_back(1, sched.now()); });
  sched.Run(1.0);
  timers.Arm([&] { fired.emplace_back(2, sched.now()); });
  EXPECT_TRUE(timers.Cancel(head));
  sched.Run();

  // The dead head is skipped for free when the queue drains; the second
  // timer still fires at its own due time.
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], std::make_pair(2, 5.0));
}

TEST(BatchTimerTest, ArmingFromInsideAFiringTimerWorks) {
  Scheduler sched;
  BatchTimerQueue timers(&sched, 5.0);
  std::vector<SimTime> fired;
  timers.Arm([&] {
    fired.push_back(sched.now());
    timers.Arm([&] { fired.push_back(sched.now()); });
  });
  sched.Run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 5.0);
  EXPECT_EQ(fired[1], 10.0);
}

TEST(BatchTimerTest, NegativeDelayFiresAtTheCurrentTime) {
  Scheduler sched;
  BatchTimerQueue timers(&sched, -1.0);
  SimTime fired_at = -1;
  sched.ScheduleAt(2.0, [&] {
    timers.Arm([&] { fired_at = sched.now(); });
  });
  sched.Run();
  EXPECT_EQ(fired_at, 2.0);
}

TEST(BatchTimerTest, ManyArmCancelRoundsStayCheap) {
  // The TIME_WAIT usage pattern: waves of closes arm timers, some slots
  // get reused (cancelled) before expiry. Engine events stay bounded by
  // the number of distinct drain points, not the number of timers.
  Scheduler sched;
  BatchTimerQueue timers(&sched, 10.0);
  int fired = 0;
  int cancelled = 0;
  for (int wave = 0; wave < 8; ++wave) {
    std::vector<BatchTimerQueue::Token> tokens;
    for (int i = 0; i < 100; ++i) {
      tokens.push_back(timers.Arm([&fired] { ++fired; }));
    }
    for (int i = 0; i < 100; i += 2) {
      if (timers.Cancel(tokens[i])) ++cancelled;
    }
    sched.Run(sched.now() + 1.0);
  }
  sched.Run();
  EXPECT_EQ(fired, 8 * 50);
  EXPECT_EQ(cancelled, 8 * 50);
  // 800 arms collapsed to (at most) one engine event per wave boundary
  // crossed; far fewer than one per timer.
  EXPECT_LE(timers.engine_events_armed(), 16u);
}

TEST(BatchTimerTest, TimeWaitChurnStress) {
  // Sustained TIME_WAIT churn: every step closes a connection (arms a
  // timer) and most slots are reclaimed (cancelled) before expiry, in
  // rough arm order with some stragglers. pending_count() must track
  // exactly, the cancelled prefix must not accumulate, and every
  // surviving timer must fire exactly once. Debug builds additionally
  // walk the full FIFO invariant after every mutation.
  Scheduler sched;
  BatchTimerQueue timers(&sched, 2.0);  // seconds — rides the heap tier
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::deque<BatchTimerQueue::Token> open;
  int fired = 0;
  int expected = 0;
  int cancelled = 0;
  std::size_t live = 0;
  for (int step = 0; step < 5000; ++step) {
    open.push_back(timers.Arm([&fired] { ++fired; }));
    ++live;
    // Reclaim ~7/8 of connections before their timer expires, mostly
    // oldest-first but occasionally mid-queue.
    if (next() % 8 != 0 && !open.empty()) {
      const std::size_t pick =
          (next() % 4 == 0) ? next() % open.size() : 0;
      if (timers.Cancel(open[pick])) {
        ++cancelled;
        --live;
      }
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(timers.pending_count(), live);
    // Advance a millisecond of simulated time every few steps so due
    // times spread out and drains interleave with the churn.
    if (step % 4 == 3) {
      sched.Run(sched.now() + 1e-3);
      live = timers.pending_count();  // drains fire survivors
    }
  }
  expected = 5000 - cancelled;
  sched.Run();
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(timers.pending_count(), 0u);
  // The batching win must survive churn: engine events stay bounded by
  // drain points (one per Run window at most, plus re-arms after
  // cancelled-prefix trims), far below one per timer.
  EXPECT_LT(timers.engine_events_armed(), 2600u);
}

}  // namespace
}  // namespace wimpy::sim
