// KV failover routing over the consistent-hash ring (kv/experiment.cc +
// shard/ring.h): a replica failing mid-run must be routed around with no
// lost acks, and span-energy attribution must stay conserved through the
// failure (ISSUE: failover coverage satellite).
#include <gtest/gtest.h>

#include "hw/profiles.h"
#include "kv/experiment.h"
#include "obs/energy.h"
#include "obs/tracer.h"

namespace wimpy::kv {
namespace {

KvExperimentConfig FailoverConfig(obs::EnergyAttributor* energy,
                                  obs::Tracer* tracer) {
  KvExperimentConfig config;
  config.node_profile = hw::EdisonProfile();
  config.node_count = 8;
  config.replication = 2;  // failed primaries' shards stay readable
  config.seed = 4242;
  config.energy = energy;
  // Residency rows exist only for sampled (traced) queries, so trace
  // every query to make the conservation check cover the whole run.
  config.tracer = tracer;
  config.trace_sample_every = 1;
  return config;
}

TEST(KvFailoverTest, RoutesAroundFailedReplicaWithNoLostAcks) {
  obs::EnergyAttributor energy;
  obs::Tracer tracer;
  KvExperiment exp(FailoverConfig(&energy, &tracer));
  const double qps = 600.0;
  const Duration measure = Seconds(6);
  const KvReport report = exp.MeasureWithFailover(qps, /*failed_nodes=*/1,
                                                  measure);

  // Zero lost acks: every query found a healthy owner on the preference
  // walk, before and after the mid-window failure.
  EXPECT_EQ(report.error_rate, 0.0);
  // The surviving tier keeps absorbing the open-loop load.
  EXPECT_GE(report.achieved_qps, 0.9 * qps);
  EXPECT_GT(report.p99_latency, 0.0);

  // Energy attribution survives the failure conserved: attributed rows
  // plus unattributed idle equal the observed total exactly.
  obs::EnergyLedger ledger = energy.TakeLedger();
  ASSERT_FALSE(ledger.rows.empty());
  Joules attributed = 0;
  for (const obs::SpanEnergyRow& row : ledger.rows) {
    EXPECT_GT(row.joules, 0.0);
    attributed += row.joules;
  }
  EXPECT_NEAR(attributed + ledger.unattributed_joules, ledger.total_joules,
              ledger.total_joules * 1e-9);
  EXPECT_GT(ledger.window_joules, 0.0);
}

TEST(KvFailoverTest, AllButOneNodeDownStillServes) {
  obs::EnergyAttributor energy;
  obs::Tracer tracer;
  KvExperiment exp(FailoverConfig(&energy, &tracer));
  // 7 of 8 nodes fail mid-window; the preference walk always ends at the
  // survivor, so no request is dropped (it just queues).
  const KvReport report = exp.MeasureWithFailover(200.0, /*failed_nodes=*/7,
                                                  Seconds(4));
  EXPECT_EQ(report.error_rate, 0.0);
  EXPECT_GT(report.achieved_qps, 0.0);
}

TEST(KvFailoverTest, FailoverRunIsDeterministic) {
  obs::EnergyAttributor e1;
  obs::EnergyAttributor e2;
  obs::Tracer t1;
  obs::Tracer t2;
  KvExperiment a(FailoverConfig(&e1, &t1));
  KvExperiment b(FailoverConfig(&e2, &t2));
  const KvReport ra = a.MeasureWithFailover(600.0, 1, Seconds(4));
  const KvReport rb = b.MeasureWithFailover(600.0, 1, Seconds(4));
  EXPECT_EQ(ra.achieved_qps, rb.achieved_qps);
  EXPECT_EQ(ra.p99_latency, rb.p99_latency);
  EXPECT_EQ(ra.executed_events, rb.executed_events);
  const obs::EnergyLedger la = e1.TakeLedger();
  const obs::EnergyLedger lb = e2.TakeLedger();
  EXPECT_EQ(la.rows.size(), lb.rows.size());
  EXPECT_EQ(la.total_joules, lb.total_joules);
}

}  // namespace
}  // namespace wimpy::kv
