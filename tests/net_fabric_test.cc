#include "net/fabric.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/profiles.h"
#include "sim/process.h"

namespace wimpy::net {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fabric_(&sched_) {
    for (int i = 0; i < 2; ++i) {
      edison_.push_back(
          std::make_unique<hw::ServerNode>(&sched_, hw::EdisonProfile(), i));
      fabric_.AddNode(edison_.back().get(), "edison-room");
    }
    for (int i = 10; i < 12; ++i) {
      dell_.push_back(std::make_unique<hw::ServerNode>(
          &sched_, hw::DellR620Profile(), i));
      fabric_.AddNode(dell_.back().get(), "dell-room");
    }
    fabric_.SetGroupLink("edison-room", "dell-room", Gbps(1),
                         Milliseconds(0.02));
  }

  sim::Process DoTransfer(int src, int dst, Bytes n, double* done_at) {
    co_await fabric_.Transfer(src, dst, n);
    *done_at = sched_.now();
  }

  sim::Scheduler sched_;
  Fabric fabric_;
  std::vector<std::unique_ptr<hw::ServerNode>> edison_;
  std::vector<std::unique_ptr<hw::ServerNode>> dell_;
};

TEST_F(FabricTest, PingLatenciesMatchSection44) {
  // Edison<->Edison ~1.3 ms RTT... the paper reports one-way ping numbers;
  // our Latency() is one-way and should reproduce them.
  EXPECT_NEAR(fabric_.Latency(0, 1), Milliseconds(1.3), 1e-9);
  EXPECT_NEAR(fabric_.Latency(10, 11), Milliseconds(0.24), 1e-9);
  EXPECT_NEAR(fabric_.Latency(0, 10), Milliseconds(0.79), 1e-9);
}

TEST_F(FabricTest, EdisonToEdisonLimitedByNic) {
  double done_at = -1;
  // 1 GB at 100 Mbps = 1e9 / 12.5e6 = 80 s.
  sim::Spawn(sched_, DoTransfer(0, 1, GB(1), &done_at));
  sched_.Run();
  EXPECT_NEAR(done_at, 80.0, 0.01);
}

TEST_F(FabricTest, DellToDellTenTimesFaster) {
  double done_at = -1;
  sim::Spawn(sched_, DoTransfer(10, 11, GB(1), &done_at));
  sched_.Run();
  EXPECT_NEAR(done_at, 8.0, 0.01);
}

TEST_F(FabricTest, CrossGroupLimitedByWeakerNic) {
  double done_at = -1;
  sim::Spawn(sched_, DoTransfer(10, 0, GB(1), &done_at));
  sched_.Run();
  EXPECT_NEAR(done_at, 80.0, 0.01);  // Edison rx NIC dominates
}

TEST_F(FabricTest, TwoFlowsShareOneNic) {
  std::vector<double> done(2, -1);
  // Both flows converge on node 0's rx channel.
  sim::Spawn(sched_, DoTransfer(1, 0, MB(12.5), &done[0]));
  sim::Spawn(sched_, DoTransfer(10, 0, MB(12.5), &done[1]));
  sched_.Run();
  // Each gets ~50 Mbps of node 0's 100 Mbps: ~2 s instead of ~1 s.
  EXPECT_NEAR(done[0], 2.0, 0.05);
  EXPECT_NEAR(done[1], 2.0, 0.05);
}

TEST_F(FabricTest, LoopbackIsFast) {
  double done_at = -1;
  sim::Spawn(sched_, DoTransfer(0, 0, GB(1), &done_at));
  sched_.Run();
  EXPECT_LT(done_at, Milliseconds(1));
}

TEST_F(FabricTest, ByteCountersTrackTraffic) {
  double done_at = -1;
  sim::Spawn(sched_, DoTransfer(0, 10, MB(5), &done_at));
  sched_.Run();
  EXPECT_EQ(edison_[0]->nic().bytes_sent(), MB(5));
  EXPECT_EQ(dell_[0]->nic().bytes_received(), MB(5));
}

TEST_F(FabricTest, GroupLinkUtilisationVisible) {
  EXPECT_EQ(fabric_.GroupLinkBusyFraction("edison-room", "dell-room"), 0.0);
  double done_at = -1;
  sim::Spawn(sched_, DoTransfer(10, 0, GB(1), &done_at));
  sched_.Run(1.0);
  EXPECT_GT(fabric_.GroupLinkBusyFraction("edison-room", "dell-room"), 0.0);
  sched_.Run();
}

TEST(FabricAggregateTest, GroupLinkCapsAggregateThroughput) {
  // Ten Dell senders into ten Dell receivers across a 1 Gbps room link:
  // each flow could do 1 Gbps alone, but the aggregate pipe is shared.
  sim::Scheduler sched;
  Fabric fabric(&sched);
  std::vector<std::unique_ptr<hw::ServerNode>> nodes;
  for (int i = 0; i < 20; ++i) {
    nodes.push_back(std::make_unique<hw::ServerNode>(
        &sched, hw::DellR620Profile(), i));
    fabric.AddNode(nodes.back().get(), i < 10 ? "room-a" : "room-b");
  }
  fabric.SetGroupLink("room-a", "room-b", Gbps(1), 0);
  std::vector<double> done(10, -1);
  auto xfer = [&](int src, int dst, double* out) -> sim::Process {
    co_await fabric.Transfer(src, dst, MB(125));
    *out = sched.now();
  };
  for (int i = 0; i < 10; ++i) {
    sim::Spawn(sched, xfer(i, 10 + i, &done[i]));
  }
  sched.Run();
  // 10 x 125 MB through a shared 125 MB/s link: ~10 s, not ~1 s.
  for (double t : done) EXPECT_NEAR(t, 10.0, 0.1);
}

}  // namespace
}  // namespace wimpy::net
