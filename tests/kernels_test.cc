#include <gtest/gtest.h>

#include "hw/profiles.h"
#include "kernels/dhrystone.h"
#include "kernels/sysbench.h"

namespace wimpy::kernels {
namespace {

TEST(DhrystoneTest, RunsAndScores) {
  const auto result = RunDhrystone(200000);
  EXPECT_EQ(result.iterations, 200000);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.dmips, 0.0);
  EXPECT_NE(result.checksum, 0u);
}

TEST(DhrystoneTest, ChecksumDeterministicPerCount) {
  const auto a = RunDhrystone(50000);
  const auto b = RunDhrystone(50000);
  EXPECT_EQ(a.checksum, b.checksum);
  const auto c = RunDhrystone(50001);
  EXPECT_NE(a.checksum, c.checksum);
}

TEST(DhrystoneTest, MinstrConversion) {
  // 100 million runs / 1757 = the paper's DMIPS formula denominator.
  EXPECT_NEAR(MinstrForIterations(100e6), 56915.0, 1.0);
  // One second of work on an Edison thread.
  EXPECT_NEAR(MinstrForIterations(632.3 * 1757.0), 632.3, 1e-9);
}

TEST(SysbenchCpuTest, CountPrimesIsCorrect) {
  EXPECT_EQ(CountPrimes(10), 4);     // 2 3 5 7
  EXPECT_EQ(CountPrimes(100), 25);
  EXPECT_EQ(CountPrimes(20000), 2262);
}

TEST(SysbenchCpuTest, CalibrationMatchesFigures2And3) {
  const double event = SysbenchCpuEventDemandMinstr(kSysbenchMaxPrime);
  const double total = SysbenchCpuTotalDemandMinstr(kSysbenchEvents,
                                                    kSysbenchMaxPrime);
  // One Edison thread: ~570 s; one Dell thread: ~32 s (15-18x gap).
  const double edison_s = total / hw::EdisonProfile().cpu.dmips_per_thread;
  const double dell_s = total / hw::DellR620Profile().cpu.dmips_per_thread;
  EXPECT_NEAR(edison_s, 569.0, 5.0);
  EXPECT_NEAR(dell_s, 31.6, 0.5);
  EXPECT_NEAR(edison_s / dell_s, 18.0, 0.1);
  EXPECT_GT(event, 0);
}

TEST(SysbenchCpuTest, DemandScalesSuperlinearlyWithLimit) {
  const double d1 = SysbenchCpuEventDemandMinstr(20000);
  const double d2 = SysbenchCpuEventDemandMinstr(80000);
  EXPECT_NEAR(d2 / d1, 8.0, 1e-9);  // (4x)^1.5
}

TEST(SysbenchMemoryTest, HostBenchProducesRate) {
  const auto r = RunHostMemoryBench(KiB(64), MiB(64));
  EXPECT_GT(r.rate, 0.0);
}

TEST(SysbenchMemoryTest, ModelSaturatesWithThreads) {
  const auto spec = hw::EdisonProfile().memory;
  const auto r1 = ModelMemoryRate(spec, MiB(1), 1);
  const auto r2 = ModelMemoryRate(spec, MiB(1), 2);
  const auto r4 = ModelMemoryRate(spec, MiB(1), 4);
  EXPECT_NEAR(r2 / r1, 2.0, 1e-9);  // scales to 2 threads
  EXPECT_NEAR(r4, r2, 1e-9);        // then saturates (paper: beyond 2)
  EXPECT_NEAR(r2, GBps(2.2) * (1.0 / (1.0 + 16.0 / 1024.0)), 1e6);
}

TEST(SysbenchMemoryTest, ModelPenalisesSmallBlocks) {
  const auto spec = hw::DellR620Profile().memory;
  const auto small = ModelMemoryRate(spec, KiB(4), 16);
  const auto large = ModelMemoryRate(spec, MiB(1), 16);
  EXPECT_LT(small, 0.25 * large);
  // Plateau: 256 KiB within ~5% of 1 MiB.
  const auto mid = ModelMemoryRate(spec, KiB(256), 16);
  EXPECT_GT(mid, 0.95 * large);
}

TEST(SysbenchMemoryTest, DellSaturatesAtTwelveThreads) {
  const auto spec = hw::DellR620Profile().memory;
  EXPECT_LT(ModelMemoryRate(spec, MiB(1), 11),
            ModelMemoryRate(spec, MiB(1), 12));
  EXPECT_NEAR(ModelMemoryRate(spec, MiB(1), 12),
              ModelMemoryRate(spec, MiB(1), 16), 1e-9);
}

}  // namespace
}  // namespace wimpy::kernels
