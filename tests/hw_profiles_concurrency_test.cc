// Concurrency smoke test for the hardware profile registry. Run under
// ThreadSanitizer to make it meaningful:
//   cmake -B build-tsan -S . -DWIMPY_TSAN=ON && cmake --build build-tsan -j
//   ctest --test-dir build-tsan -R 'replication|profiles_concurrency'
//
// The hazard it targets: this binary's FIRST registry access happens on
// many threads at once, so lazy initialisation of the built-in profiles
// races unless guarded (src/hw/profiles.cc uses call_once + a mutex).
// Keep any earlier registry use out of this file.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "hw/profiles.h"

namespace wimpy::hw {
namespace {

TEST(ProfileRegistryConcurrencyTest, FirstAccessAndMixedOpsAreRaceFree) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200;

  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &go, &failures] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kItersPerThread; ++i) {
        switch ((t + i) % 4) {
          case 0: {
            const auto p = ProfileRegistry::Get("edison");
            if (!p.ok() || p.value().cpu.cores != 2) failures.fetch_add(1);
            break;
          }
          case 1: {
            const auto p = ProfileRegistry::Get("dell-r620");
            if (!p.ok() || p.value().cpu.cores != 6) failures.fetch_add(1);
            break;
          }
          case 2: {
            const auto names = ProfileRegistry::Names();
            if (names.size() < 3) failures.fetch_add(1);
            break;
          }
          default: {
            HardwareProfile p = EdisonProfile();
            p.name = "edison-writer-" + std::to_string(t);
            ProfileRegistry::Register(p);
            if (!ProfileRegistry::Get(p.name).ok()) failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  EXPECT_EQ(failures.load(), 0);
  // Built-ins survive concurrent writer traffic.
  EXPECT_TRUE(ProfileRegistry::Get("edison").ok());
  EXPECT_TRUE(ProfileRegistry::Get("dell-r620").ok());
  EXPECT_TRUE(ProfileRegistry::Get("raspberry-pi-2").ok());
  const auto names = ProfileRegistry::Names();
  EXPECT_GE(names.size(), 3u + 8u);
}

}  // namespace
}  // namespace wimpy::hw
