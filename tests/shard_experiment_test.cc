// Sharded scale-out experiment (shard/experiment.h): live rebalance with
// zero failed requests, run-to-run determinism, and the oversubscription
// throughput cliff the hierarchical topology exists to expose.
#include "shard/experiment.h"

#include <gtest/gtest.h>

namespace wimpy::shard {
namespace {

ShardExperimentConfig BaseConfig() {
  ShardExperimentConfig config;  // 3 racks x 4 Edisons + 1 spare
  config.ring.replication = 2;
  config.seed = 77;
  // Small shards keep the migration fast enough for a unit test while
  // still exercising batching and catch-up.
  config.migration.shard_bytes = 512 * 1024;
  return config;
}

TEST(ShardExperimentTest, SteadyStateServesAtTarget) {
  ShardExperimentConfig config = BaseConfig();
  ShardExperiment exp(std::move(config));
  const ShardReport report = exp.Measure(1500.0, Seconds(4));
  EXPECT_EQ(report.failed, 0);
  EXPECT_GE(report.achieved_qps, 0.9 * 1500.0);
  EXPECT_GT(report.queries_per_joule, 0.0);
  // R=2 chains over 3 racks: most replica hops cross a rack boundary.
  EXPECT_GT(report.cross_rack_replica_fraction, 0.3);
  // No churn requested -> no migration ran.
  EXPECT_EQ(report.migration.shards_moved, 0);
  EXPECT_FALSE(report.migration.done);
}

TEST(ShardExperimentTest, MidRunJoinMigratesWithZeroFailedRequests) {
  ShardExperimentConfig config = BaseConfig();
  config.churn = Churn::kJoin;
  ShardExperiment exp(std::move(config));
  const ShardReport report = exp.Measure(1500.0, Seconds(6));
  // The live-rebalance contract: reads and writes keep flowing through
  // the whole copy + catch-up + cutover.
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.error_rate, 0.0);
  EXPECT_GE(report.achieved_qps, 0.9 * 1500.0);
  // The migration actually ran to completion and moved data.
  EXPECT_TRUE(report.migration.done);
  EXPECT_GT(report.migration.shards_moved, 0);
  EXPECT_GT(report.migration.bulk_bytes, 0);
  EXPECT_GT(report.migration.transfers, 0);
  EXPECT_GT(report.migration.duration(), 0.0);
  // ~K/N of 256 shards move to the joiner (loose ketama bounds).
  EXPECT_LE(report.migration.shards_moved, 256 / 4);
}

TEST(ShardExperimentTest, MidRunLeaveDrainsGracefully) {
  ShardExperimentConfig config = BaseConfig();
  config.churn = Churn::kLeave;
  ShardExperiment exp(std::move(config));
  const ShardReport report = exp.Measure(1500.0, Seconds(6));
  EXPECT_EQ(report.failed, 0);
  EXPECT_GE(report.achieved_qps, 0.9 * 1500.0);
  EXPECT_TRUE(report.migration.done);
  EXPECT_GT(report.migration.shards_moved, 0);
}

TEST(ShardExperimentTest, RunsAreDeterministic) {
  ShardExperimentConfig config = BaseConfig();
  config.churn = Churn::kJoin;
  ShardExperiment a(config);
  ShardExperiment b(std::move(config));
  const ShardReport ra = a.Measure(1200.0, Seconds(4));
  const ShardReport rb = b.Measure(1200.0, Seconds(4));
  EXPECT_EQ(ra.done, rb.done);
  EXPECT_EQ(ra.p99_latency, rb.p99_latency);
  EXPECT_EQ(ra.migration.bulk_bytes, rb.migration.bulk_bytes);
  EXPECT_EQ(ra.migration.finished, rb.migration.finished);
  EXPECT_EQ(ra.executed_events, rb.executed_events);
}

TEST(ShardExperimentTest, OversubscriptionBendsTheThroughputCurve) {
  // Write-heavy load so chain replication pounds the uplinks.
  ShardExperimentConfig wide = BaseConfig();
  wide.get_fraction = 0.2;
  wide.rack_oversubscription = 1.0;
  ShardExperimentConfig thin = BaseConfig();
  thin.get_fraction = 0.2;
  thin.rack_oversubscription = 32.0;
  const double qps = 8000.0;
  ShardExperiment wide_exp(std::move(wide));
  ShardExperiment thin_exp(std::move(thin));
  const ShardReport full = wide_exp.Measure(qps, Seconds(4));
  const ShardReport starved = thin_exp.Measure(qps, Seconds(4));
  // With full-bisection uplinks the tier keeps up; at 32x
  // oversubscription the rack uplinks saturate and in-window completions
  // (goodput) fall behind the open-loop arrivals while latency blows
  // out. achieved_qps counts arrivals that eventually finish, so it
  // tracks offered load in both configs — goodput is the bend.
  EXPECT_GE(full.goodput_qps, 0.9 * qps);
  EXPECT_LT(starved.goodput_qps, 0.8 * full.goodput_qps);
  EXPECT_GT(starved.p99_latency, 2.0 * full.p99_latency);
  EXPECT_GT(starved.max_rack_uplink_busy, 0.9);
  EXPECT_LT(full.max_rack_uplink_busy, 0.6);
}

}  // namespace
}  // namespace wimpy::shard
