#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/histogram.h"

namespace wimpy {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, MergeEqualsSingleStream) {
  OnlineStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmptySides) {
  OnlineStats a, b;
  a.Add(1.0);
  a.Merge(b);  // merging empty is a no-op
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(PercentileTrackerTest, ExactQuartiles) {
  PercentileTracker t;
  for (int i = 100; i >= 1; --i) t.Add(i);  // 1..100, reverse order
  EXPECT_DOUBLE_EQ(t.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.Percentile(1.0), 100.0);
  EXPECT_NEAR(t.Median(), 50.5, 1e-12);
  EXPECT_NEAR(t.Percentile(0.99), 99.01, 1e-9);
}

TEST(PercentileTrackerTest, AddAfterQueryResorts) {
  PercentileTracker t;
  t.Add(10.0);
  EXPECT_DOUBLE_EQ(t.Median(), 10.0);
  t.Add(0.0);
  t.Add(20.0);
  EXPECT_DOUBLE_EQ(t.Median(), 10.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.0), 0.0);
}

TEST(TimeWeightedAverageTest, PiecewiseConstantIntegral) {
  TimeWeightedAverage twa;
  twa.Set(0.0, 10.0);  // 10 W for 2 s
  twa.Set(2.0, 50.0);  // 50 W for 3 s
  EXPECT_DOUBLE_EQ(twa.IntegralUntil(5.0), 10.0 * 2 + 50.0 * 3);
  EXPECT_DOUBLE_EQ(twa.AverageUntil(5.0), 170.0 / 5.0);
  EXPECT_DOUBLE_EQ(twa.current(), 50.0);
}

TEST(TimeWeightedAverageTest, NoElapsedTimeUsesCurrent) {
  TimeWeightedAverage twa;
  twa.Set(3.0, 7.0);
  EXPECT_DOUBLE_EQ(twa.AverageUntil(3.0), 7.0);
  EXPECT_DOUBLE_EQ(twa.IntegralUntil(3.0), 0.0);
}

TEST(LinearHistogramTest, BucketsAndOverflow) {
  LinearHistogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(0.7);
  h.Add(5.5);
  h.Add(25.0);
  h.Add(-1.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.BucketValue(0), 2u);
  EXPECT_EQ(h.BucketValue(5), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.ArgMaxBucket(), 0u);
  EXPECT_DOUBLE_EQ(h.BucketLow(5), 5.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(5), 6.0);
}

TEST(LinearHistogramTest, AsciiRenderingContainsBars) {
  LinearHistogram h(0.0, 4.0, 4);
  for (int i = 0; i < 8; ++i) h.Add(1.5);
  h.Add(3.5);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find("##########"), std::string::npos);
  EXPECT_NE(art.find("3.000"), std::string::npos);
}

}  // namespace
}  // namespace wimpy
