#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/summary.h"

namespace wimpy {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance (Bessel's n-1): sum of squared deviations is 32.
  EXPECT_DOUBLE_EQ(s.variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(32.0 / 7.0));
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.Add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

// OnlineStats::stddev() and Summarize().stddev are two routes to the same
// quantity (one streaming, one two-pass); they must agree so sweep tables
// and online accumulators never disagree about spread.
TEST(OnlineStatsTest, StddevMatchesSummarize) {
  const std::vector<double> samples = {2.0, 4.0, 4.0, 4.0,
                                       5.0, 5.0, 7.0, 9.0};
  OnlineStats s;
  for (double x : samples) s.Add(x);
  const MetricSummary summary = Summarize(samples);
  EXPECT_EQ(summary.count, s.count());
  EXPECT_NEAR(summary.mean, s.mean(), 1e-12);
  EXPECT_NEAR(summary.stddev, s.stddev(), 1e-12);
}

// Merging per-shard accumulators must agree with Summarize over the
// concatenated sample set — the invariant parallel sweeps rely on.
TEST(OnlineStatsTest, MergeMatchesSummarize) {
  std::vector<double> samples;
  OnlineStats a, b;
  for (int i = 0; i < 25; ++i) {
    const double x = 0.1 * i * i - 1.5 * i + 3.0;
    samples.push_back(x);
    (i < 10 ? a : b).Add(x);
  }
  a.Merge(b);
  const MetricSummary summary = Summarize(samples);
  EXPECT_EQ(summary.count, a.count());
  EXPECT_NEAR(summary.mean, a.mean(), 1e-12);
  EXPECT_NEAR(summary.stddev, a.stddev(), 1e-9);
}

TEST(OnlineStatsTest, MergeEqualsSingleStream) {
  OnlineStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmptySides) {
  OnlineStats a, b;
  a.Add(1.0);
  a.Merge(b);  // merging empty is a no-op
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(PercentileTrackerTest, ExactQuartiles) {
  PercentileTracker t;
  for (int i = 100; i >= 1; --i) t.Add(i);  // 1..100, reverse order
  EXPECT_DOUBLE_EQ(t.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.Percentile(1.0), 100.0);
  EXPECT_NEAR(t.Median(), 50.5, 1e-12);
  EXPECT_NEAR(t.Percentile(0.99), 99.01, 1e-9);
}

TEST(PercentileTrackerTest, EmptyReturnsNaN) {
  // NaN, never 0: a zero p99 from an empty tracker would vacuously pass
  // any SLO gate. Callers feeding bench JSON must check empty() first.
  PercentileTracker t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(std::isnan(t.Percentile(0.0)));
  EXPECT_TRUE(std::isnan(t.Percentile(0.5)));
  EXPECT_TRUE(std::isnan(t.Percentile(1.0)));
  EXPECT_TRUE(std::isnan(t.Median()));
  t.Add(3.0);
  EXPECT_FALSE(t.empty());
  EXPECT_DOUBLE_EQ(t.Percentile(0.5), 3.0);
}

TEST(PercentileTrackerTest, QuantileClampedToUnitInterval) {
  PercentileTracker t;
  t.Add(1.0);
  t.Add(2.0);
  t.Add(3.0);
  EXPECT_DOUBLE_EQ(t.Percentile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(t.Percentile(1.5), 3.0);
}

TEST(PercentileTrackerTest, SingleSampleIsEveryPercentile) {
  PercentileTracker t;
  t.Add(42.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(t.Percentile(1.0), 42.0);
}

TEST(PercentileTrackerTest, OutOfRangeQuantileClamps) {
  PercentileTracker t;
  t.Add(1.0);
  t.Add(2.0);
  EXPECT_DOUBLE_EQ(t.Percentile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(t.Percentile(1.5), 2.0);
}

TEST(PercentileTrackerTest, DuplicatesInterpolateFlat) {
  PercentileTracker t;
  for (int i = 0; i < 4; ++i) t.Add(5.0);
  t.Add(10.0);
  // Sorted: 5 5 5 5 10. Positions 0..3 are all 5, so any quantile that
  // lands strictly inside them is exactly 5.
  EXPECT_DOUBLE_EQ(t.Percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.75), 5.0);
  EXPECT_DOUBLE_EQ(t.Percentile(1.0), 10.0);
  // 0.9 lands at position 3.6: 60% of the way from the last 5 to the 10.
  EXPECT_NEAR(t.Percentile(0.9), 8.0, 1e-12);
}

TEST(PercentileTrackerTest, AddAfterQueryResorts) {
  PercentileTracker t;
  t.Add(10.0);
  EXPECT_DOUBLE_EQ(t.Median(), 10.0);
  t.Add(0.0);
  t.Add(20.0);
  EXPECT_DOUBLE_EQ(t.Median(), 10.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.0), 0.0);
}

TEST(TimeWeightedAverageTest, PiecewiseConstantIntegral) {
  TimeWeightedAverage twa;
  twa.Set(0.0, 10.0);  // 10 W for 2 s
  twa.Set(2.0, 50.0);  // 50 W for 3 s
  EXPECT_DOUBLE_EQ(twa.IntegralUntil(5.0), 10.0 * 2 + 50.0 * 3);
  EXPECT_DOUBLE_EQ(twa.AverageUntil(5.0), 170.0 / 5.0);
  EXPECT_DOUBLE_EQ(twa.current(), 50.0);
}

TEST(TimeWeightedAverageTest, NoElapsedTimeUsesCurrent) {
  TimeWeightedAverage twa;
  twa.Set(3.0, 7.0);
  EXPECT_DOUBLE_EQ(twa.AverageUntil(3.0), 7.0);
  EXPECT_DOUBLE_EQ(twa.IntegralUntil(3.0), 0.0);
}

TEST(LinearHistogramTest, BucketsAndOverflow) {
  LinearHistogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(0.7);
  h.Add(5.5);
  h.Add(25.0);
  h.Add(-1.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.BucketValue(0), 2u);
  EXPECT_EQ(h.BucketValue(5), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.ArgMaxBucket(), 0u);
  EXPECT_DOUBLE_EQ(h.BucketLow(5), 5.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(5), 6.0);
}

TEST(LinearHistogramTest, AsciiRenderingContainsBars) {
  LinearHistogram h(0.0, 4.0, 4);
  for (int i = 0; i < 8; ++i) h.Add(1.5);
  h.Add(3.5);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find("##########"), std::string::npos);
  EXPECT_NE(art.find("3.000"), std::string::npos);
}

TEST(LinearHistogramTest, EmptyHistogramRendersNoBucketRows) {
  LinearHistogram h(0.0, 4.0, 4);
  const std::string art = h.ToAscii(10);
  // No spurious "[0.000, 1.000) 0" row for a histogram nothing was added
  // to — just the empty note.
  EXPECT_EQ(art.find('['), std::string::npos);
  EXPECT_NE(art.find("no in-range samples"), std::string::npos);
}

TEST(LinearHistogramTest, OnlyOverflowRendersNoBucketRows) {
  LinearHistogram h(0.0, 4.0, 4);
  h.Add(100.0);
  const std::string art = h.ToAscii(10);
  EXPECT_EQ(art.find('['), std::string::npos);
  EXPECT_NE(art.find("overflow: 1"), std::string::npos);
}

TEST(LinearHistogramTest, ArgMaxOfEmptyIsEndSentinel) {
  LinearHistogram h(0.0, 4.0, 4);
  EXPECT_EQ(h.ArgMaxBucket(), h.bucket_count());
  h.Add(-1.0);   // underflow only: buckets still all empty
  h.Add(100.0);  // overflow only
  EXPECT_EQ(h.ArgMaxBucket(), h.bucket_count());
  h.Add(2.5);
  EXPECT_EQ(h.ArgMaxBucket(), 2u);
}

TEST(LinearHistogramTest, MergeAddsCountsAndOverflow) {
  LinearHistogram a(0.0, 10.0, 10);
  LinearHistogram b(0.0, 10.0, 10);
  a.Add(1.5);
  a.Add(-2.0);
  b.Add(1.5);
  b.Add(7.5);
  b.Add(25.0);
  a.Merge(b);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.BucketValue(1), 2u);
  EXPECT_EQ(a.BucketValue(7), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
}

}  // namespace
}  // namespace wimpy
