#include "core/hybrid.h"

#include <gtest/gtest.h>

#include "hw/profiles.h"

namespace wimpy::core {
namespace {

// Calibration probes run real (small) simulations; share them across tests.
class HybridTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    wimpy_ = new NodeCapability(CalibrateNode(hw::EdisonProfile()));
    brawny_ = new NodeCapability(CalibrateNode(hw::DellR620Profile()));
  }
  static void TearDownTestSuite() {
    delete wimpy_;
    delete brawny_;
    wimpy_ = nullptr;
    brawny_ = nullptr;
  }

  static NodeCapability* wimpy_;
  static NodeCapability* brawny_;
};

NodeCapability* HybridTest::wimpy_ = nullptr;
NodeCapability* HybridTest::brawny_ = nullptr;

TEST_F(HybridTest, CalibrationFindsSensibleRates) {
  EXPECT_GT(wimpy_->web_rps_per_node, 100);
  EXPECT_LT(wimpy_->web_rps_per_node, 2000);
  EXPECT_GT(brawny_->web_rps_per_node, wimpy_->web_rps_per_node);
  // The brawny node answers faster at low load (paper Fig 7: ~5x).
  EXPECT_LT(brawny_->web_latency, wimpy_->web_latency);
  EXPECT_GT(wimpy_->mr_mbps_per_node, 0.05);
  EXPECT_GT(brawny_->mr_mbps_per_node, wimpy_->mr_mbps_per_node);
}

TEST_F(HybridTest, PlansCoverDemand) {
  WorkloadTarget target;
  target.web_rps = 8000;
  target.web_latency_slo = Milliseconds(50);
  target.mr_mb_per_day = 400000;
  const auto plans = PlanFleet(target, *wimpy_, *brawny_);
  ASSERT_EQ(plans.size(), 3u);
  for (const auto& plan : plans) {
    if (!plan.feasible) continue;
    EXPECT_GT(plan.web_nodes + plan.latency_nodes, 0) << plan.name;
    EXPECT_GT(plan.batch_nodes, 0) << plan.name;
    EXPECT_GT(plan.tco_3yr_usd, 0) << plan.name;
    EXPECT_GT(plan.mean_power, 0) << plan.name;
  }
}

TEST_F(HybridTest, TightSloDisqualifiesPureWimpy) {
  WorkloadTarget target;
  // SLO below the Edison low-load latency but above Dell's.
  target.web_latency_slo =
      (wimpy_->web_latency + brawny_->web_latency) / 2.0;
  const auto plans = PlanFleet(target, *wimpy_, *brawny_);
  const FleetPlan* all_wimpy = nullptr;
  const FleetPlan* hybrid = nullptr;
  for (const auto& plan : plans) {
    if (plan.name == "all-wimpy") all_wimpy = &plan;
    if (plan.name == "hybrid") hybrid = &plan;
  }
  ASSERT_NE(all_wimpy, nullptr);
  ASSERT_NE(hybrid, nullptr);
  EXPECT_FALSE(all_wimpy->feasible);
  EXPECT_TRUE(hybrid->feasible);  // brawny tier takes the SLO share
}

TEST_F(HybridTest, HybridBeatsAllBrawnyOnPower) {
  WorkloadTarget target;
  target.web_rps = 10000;
  target.web_latency_slo = Milliseconds(50);
  target.mr_mb_per_day = 500000;
  const auto plans = PlanFleet(target, *wimpy_, *brawny_);
  double brawny_power = 0, hybrid_power = 0;
  for (const auto& plan : plans) {
    if (plan.name == "all-brawny") brawny_power = plan.mean_power;
    if (plan.name == "hybrid") hybrid_power = plan.mean_power;
  }
  // The paper's §7 thesis: the hybrid keeps performance but saves power.
  EXPECT_LT(hybrid_power, brawny_power);
}

}  // namespace
}  // namespace wimpy::core
