// Differential testing of FairShareServer against an independent,
// brute-force reference implementation of generalised processor sharing
// with a per-job cap.
//
// The reference advances time by direct minimum-finding over explicit
// remaining-work values (the O(n)-per-event formulation the production
// server replaced with an aggregate counter + heap). Random workloads are
// run through both; completion times must agree to floating-point
// tolerance. This guards the exact invariant the optimised implementation
// could silently break.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/random.h"
#include "sim/fair_share.h"
#include "sim/process.h"
#include "sim/scheduler.h"

namespace wimpy::sim {
namespace {

struct ArrivalPlan {
  double at;
  double demand;
};

// Brute-force GPS-with-cap: returns completion time per job.
std::vector<double> ReferenceCompletionTimes(
    const std::vector<ArrivalPlan>& plan, double capacity,
    double per_job_cap) {
  struct Job {
    double remaining;
    std::size_t index;
  };
  std::vector<double> completion(plan.size(), -1);
  std::vector<Job> active;
  std::size_t next_arrival = 0;
  // Process arrivals in time order.
  std::vector<std::size_t> order(plan.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return plan[a].at < plan[b].at;
  });

  double now = 0;
  while (next_arrival < order.size() || !active.empty()) {
    const double rate =
        active.empty()
            ? 0.0
            : std::min(per_job_cap,
                       capacity / static_cast<double>(active.size()));
    // Next event: either an arrival or the soonest completion.
    double next_time = std::numeric_limits<double>::infinity();
    bool is_arrival = false;
    if (next_arrival < order.size()) {
      next_time = plan[order[next_arrival]].at;
      is_arrival = true;
    }
    if (!active.empty()) {
      double min_remaining = active.front().remaining;
      for (const auto& job : active) {
        min_remaining = std::min(min_remaining, job.remaining);
      }
      const double eta = now + min_remaining / rate;
      if (eta < next_time) {
        next_time = eta;
        is_arrival = false;
      }
    }
    // Advance all active jobs to next_time.
    const double dt = next_time - now;
    for (auto& job : active) job.remaining -= rate * dt;
    now = next_time;
    if (is_arrival) {
      active.push_back(
          Job{plan[order[next_arrival]].demand, order[next_arrival]});
      ++next_arrival;
    }
    // Retire finished jobs.
    for (auto it = active.begin(); it != active.end();) {
      if (it->remaining <= 1e-7) {
        completion[it->index] = now;
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  }
  return completion;
}

sim::Process RunOne(FairShareServer& server, Scheduler& sched,
                    ArrivalPlan plan, double* done_at) {
  co_await Delay(sched, plan.at);
  co_await server.Serve(plan.demand);
  *done_at = sched.now();
}

class ReferenceModelProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReferenceModelProperty, MatchesBruteForceGps) {
  Rng rng(1000 + GetParam());
  const double capacity = rng.Uniform(1.0, 100.0);
  // Mix of pure-PS and capped configurations.
  const double per_job_cap =
      GetParam() % 2 == 0 ? capacity : capacity / rng.Uniform(2.0, 8.0);
  const int jobs = static_cast<int>(rng.UniformInt(3, 40));

  std::vector<ArrivalPlan> plan;
  for (int i = 0; i < jobs; ++i) {
    plan.push_back(
        ArrivalPlan{rng.Uniform(0.0, 20.0), rng.Uniform(0.1, 50.0)});
  }

  const std::vector<double> expected =
      ReferenceCompletionTimes(plan, capacity, per_job_cap);

  Scheduler sched;
  FairShareServer server(&sched, capacity, per_job_cap);
  std::vector<double> actual(plan.size(), -1);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    Spawn(sched, RunOne(server, sched, plan[i], &actual[i]));
  }
  sched.Run();

  for (std::size_t i = 0; i < plan.size(); ++i) {
    ASSERT_GE(actual[i], 0) << "job " << i << " never finished";
    EXPECT_NEAR(actual[i], expected[i],
                1e-6 * std::max(1.0, expected[i]))
        << "job " << i << " (capacity " << capacity << ", cap "
        << per_job_cap << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, ReferenceModelProperty,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace wimpy::sim
