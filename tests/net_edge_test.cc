// Edge-case coverage for the network layer: TIME_WAIT slot occupancy,
// zero-byte transfers, latency composition, and backlog bookkeeping under
// the hold_backlog (accept-queue) protocol.
#include <gtest/gtest.h>

#include <memory>

#include "hw/profiles.h"
#include "net/tcp.h"
#include "sim/process.h"

namespace wimpy::net {
namespace {

class NetEdgeTest : public ::testing::Test {
 protected:
  NetEdgeTest() : fabric_(&sched_) {
    a_ = std::make_unique<hw::ServerNode>(&sched_, hw::DellR620Profile(),
                                          0);
    b_ = std::make_unique<hw::ServerNode>(&sched_, hw::DellR620Profile(),
                                          1);
    fabric_.AddNode(a_.get(), "room");
    fabric_.AddNode(b_.get(), "room");
  }

  sim::Scheduler sched_;
  Fabric fabric_;
  std::unique_ptr<hw::ServerNode> a_, b_;
};

TEST_F(NetEdgeTest, ZeroByteTransferCompletesInstantly) {
  double done_at = -1;
  auto xfer = [&]() -> sim::Process {
    co_await fabric_.Transfer(0, 1, 0);
    done_at = sched_.now();
  };
  sim::Spawn(sched_, xfer());
  sched_.Run();
  EXPECT_EQ(done_at, 0.0);
}

TEST_F(NetEdgeTest, TimeWaitHoldsConnectionSlots) {
  TcpConfig server_cfg;
  server_cfg.max_connections = 2;
  server_cfg.time_wait = Seconds(30);
  TcpHost client(&fabric_, 0, TcpConfig{});
  TcpHost server(&fabric_, 1, server_cfg);

  auto one = [&](ConnectResult* out) -> sim::Process {
    TcpConnection conn(&client, &server);
    *out = co_await conn.Connect();
    conn.Close();  // slot enters TIME_WAIT for 30 s
  };
  ConnectResult r1, r2, r3;
  sim::Spawn(sched_, one(&r1));
  sched_.Run(1.0);
  sim::Spawn(sched_, one(&r2));
  sched_.Run(2.0);
  EXPECT_TRUE(r1.status.ok());
  EXPECT_TRUE(r2.status.ok());
  EXPECT_EQ(server.connections_open(), 2);  // both lingering

  // A third connection within TIME_WAIT finds no slots.
  sim::Spawn(sched_, one(&r3));
  sched_.Run(3.0);
  EXPECT_FALSE(r3.status.ok());

  // After TIME_WAIT expires, slots return.
  sched_.Run(40.0);
  EXPECT_EQ(server.connections_open(), 0);
  ConnectResult r4;
  sim::Spawn(sched_, one(&r4));
  sched_.Run(45.0);
  EXPECT_TRUE(r4.status.ok());
  sched_.Run();
}

TEST_F(NetEdgeTest, HoldBacklogKeepsSlotUntilExplicitRelease) {
  TcpConfig server_cfg;
  server_cfg.listen_backlog = 1;
  TcpHost client(&fabric_, 0, TcpConfig{});
  TcpHost server(&fabric_, 1, server_cfg);

  ConnectResult r1, r2;
  auto hold = [&]() -> sim::Process {
    TcpConnection conn(&client, &server);
    r1 = co_await conn.Connect(/*hold_backlog=*/true);
    // Never released: simulates a stuck accept loop.
    co_await sim::Delay(sched_, 100.0);
  };
  sim::Spawn(sched_, hold());
  sched_.Run(1.0);
  EXPECT_TRUE(r1.status.ok());
  EXPECT_EQ(server.backlog_depth(), 1);

  // Second SYN finds the backlog full and backs off until giving up.
  auto second = [&]() -> sim::Process {
    TcpConnection conn(&client, &server);
    r2 = co_await conn.Connect();
  };
  sim::Spawn(sched_, second());
  sched_.Run(20.0);
  EXPECT_EQ(r2.status.code(), StatusCode::kUnavailable);

  // Manual release empties the queue.
  server.LeaveBacklog();
  EXPECT_EQ(server.backlog_depth(), 0);
  sched_.Run();
}

TEST_F(NetEdgeTest, LatencyComposesEndpointsAndLink) {
  hw::ServerNode c(&sched_, hw::EdisonProfile(), 2);
  Fabric fabric(&sched_);
  hw::ServerNode d1(&sched_, hw::DellR620Profile(), 0);
  fabric.AddNode(&d1, "x");
  fabric.AddNode(&c, "y");
  fabric.SetGroupLink("x", "y", Gbps(1), Milliseconds(0.1));
  EXPECT_NEAR(fabric.Latency(0, 2),
              Milliseconds(0.12 + 0.65 + 0.1), 1e-12);
  // Without a configured link, only endpoint latencies count.
  Fabric bare(&sched_);
  hw::ServerNode d2(&sched_, hw::DellR620Profile(), 5);
  hw::ServerNode e2(&sched_, hw::EdisonProfile(), 6);
  bare.AddNode(&d2, "p");
  bare.AddNode(&e2, "q");
  EXPECT_NEAR(bare.Latency(5, 6), Milliseconds(0.77), 1e-12);
}

TEST_F(NetEdgeTest, RoundTripIsTwiceOneWay) {
  double done_at = -1;
  auto ping = [&]() -> sim::Process {
    co_await fabric_.RoundTrip(0, 1);
    done_at = sched_.now();
  };
  sim::Spawn(sched_, ping());
  sched_.Run();
  EXPECT_NEAR(done_at, 2 * fabric_.Latency(0, 1), 1e-12);
}

}  // namespace
}  // namespace wimpy::net
